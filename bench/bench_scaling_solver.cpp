// A5 — large-circuit solver scaling on the generated stress corpus
// (`acstab gen`, src/gen/netlist_gen.h): the PR 6 ablation.
//
//   * fill table: L+U nonzeros of the shared symbolic factorization under
//     the three column pre-orderings (none / count / amd) on RC ladders
//     and 2-D RC meshes from a few hundred to several thousand unknowns.
//     The mesh is the discriminating workload — every interior column has
//     the same degree, so the count heuristic degenerates to the natural
//     order and fills like n*k while minimum degree stays near n*log n.
//     CI asserts the >= 2x reduction from the amd rows of this table.
//   * sweep ablation: wall time per frequency point of a serial
//     injection sweep under four solver configurations —
//       pr5            count ordering, scalar kernel, cold refactor per
//                      frequency (the PR 5 solver path, the baseline)
//       amd            minimum-degree ordering only
//       amd_simd       + the split real/imag vectorized batch kernel
//       amd_simd_warm  + frequency-coherence warm-started refactorization
//     with each configuration's answers checked against the pr5 baseline
//     and the warm-start accept/fallback counters reported. The ablation
//     runs in both right-hand-side regimes, because they favor opposite
//     configurations: 24 probes (the all-nodes stability shape, where the
//     factorization is amortized over the batch and warm-starting cannot
//     pay for its refinement solves) and 1 probe (the single-node
//     stability / ac / impedance / loopgain shape, where the
//     factorization dominates and warm-starting is the big lever).
//
// Prints tables plus one machine-readable ACSTAB_BENCH_JSON line; the
// committed BENCH_6.json at the repo root is this line's array (see
// README "Benchmarks"). --quick restricts sizes/grids for the CI smoke
// job; this binary registers no google-benchmark cases.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "engine/linearized_snapshot.h"
#include "engine/sweep_engine.h"
#include "gen/netlist_gen.h"
#include "numeric/interpolation.h"
#include "numeric/sparse_factor.h"
#include "spice/ac_analysis.h"
#include "spice/circuit.h"
#include "spice/dc_analysis.h"
#include "spice/parser/netlist_parser.h"

namespace {

using namespace acstab;

struct row {
    std::string bench;          ///< "scaling_fill" | "scaling_sweep"
    std::string kind;           ///< "ladder" | "rcmesh"
    std::size_t unknowns = 0;
    std::string mode;           ///< ordering name or sweep configuration
    long long probes = -1;      ///< right-hand sides of the sweep ablation
    long long lu_nnz = -1;      ///< L+U nonzeros of the symbolic pattern
    double ms_per_freq = -1.0;  ///< sweep wall time / frequency count
    long long factors = -1;     ///< cold numeric factorizations
    long long warm_accepts = -1;
    long long warm_fallbacks = -1;
    double max_rel_err = 0.0;   ///< vs the pr5 baseline magnitudes
};

std::vector<row>& results()
{
    static std::vector<row> r;
    return r;
}

void emit_json()
{
    std::fputs("ACSTAB_BENCH_JSON [", stdout);
    for (std::size_t i = 0; i < results().size(); ++i) {
        const row& r = results()[i];
        std::printf("%s{\"bench\":\"%s\",\"kind\":\"%s\",\"unknowns\":%zu,"
                    "\"mode\":\"%s\",\"probes\":%lld,\"lu_nnz\":%lld,\"ms_per_freq\":%.5f,"
                    "\"factors\":%lld,\"warm_accepts\":%lld,\"warm_fallbacks\":%lld,"
                    "\"max_rel_err\":%.3g}",
                    i == 0 ? "" : ",", r.bench.c_str(), r.kind.c_str(), r.unknowns,
                    r.mode.c_str(), r.probes, r.lu_nnz, r.ms_per_freq, r.factors,
                    r.warm_accepts, r.warm_fallbacks, r.max_rel_err);
    }
    std::puts("]");
}

double time_ms(const std::function<void()>& fn)
{
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(stop - start).count();
}

/// One generated workload, parsed and linearized once, shared by the
/// fill table and the sweep ablation.
struct workload {
    std::string kind;
    spice::parsed_netlist net;
    std::vector<real> op;

    workload(const std::string& kind_, std::size_t size)
        : kind(kind_)
    {
        gen::gen_options gopt;
        gopt.size = size;
        net = spice::parse_netlist(gen::generate_netlist(kind, gopt));
        net.ckt.finalize();
        op = spice::dc_operating_point(net.ckt).solution;
    }
};

const char* ordering_name(numeric::column_ordering o)
{
    switch (o) {
    case numeric::column_ordering::none: return "none";
    case numeric::column_ordering::count: return "count";
    case numeric::column_ordering::amd: return "amd";
    }
    return "?";
}

/// L+U nonzero counts of the symbolic pattern under each pre-ordering,
/// on the complex MNA matrix assembled at the band's middle frequency.
void print_fill_table(const std::vector<std::size_t>& sizes)
{
    std::puts("==============================================================================");
    std::puts("A5a — symbolic fill (L+U nonzeros) vs column pre-ordering, generated corpus");
    std::puts("==============================================================================");
    std::puts("kind     unknowns    A nnz      none      count        amd   amd vs count");
    std::puts("------------------------------------------------------------------------------");
    for (const std::string kind : {"ladder", "rcmesh"}) {
        for (const std::size_t size : sizes) {
            workload w(kind, size);
            const engine::linearized_snapshot snap(w.net.ckt, w.op, {});
            numeric::csc_matrix<cplx> work = snap.make_workspace();
            snap.assemble(to_omega(1e6), work);
            std::size_t nnz[3] = {0, 0, 0};
            for (const auto o : {numeric::column_ordering::none,
                                 numeric::column_ordering::count,
                                 numeric::column_ordering::amd}) {
                numeric::lu_options lopt;
                lopt.ordering = o;
                const numeric::symbolic_lu<cplx> sym(work, lopt);
                nnz[static_cast<int>(o)] = sym.lower_nnz() + sym.upper_nnz();
                results().push_back({"scaling_fill", kind, snap.size(), ordering_name(o), -1,
                                     static_cast<long long>(nnz[static_cast<int>(o)])});
            }
            std::printf("%-8s %8zu %8zu  %8zu   %8zu   %8zu        %5.2fx\n", kind.c_str(),
                        snap.size(), work.nnz(), nnz[0], nnz[1], nnz[2],
                        static_cast<double>(nnz[1]) / static_cast<double>(nnz[2]));
        }
    }
    std::puts("");
}

struct sweep_mode {
    const char* name;
    engine::solver_tuning tuning;
};

/// Serial batched injection sweep (the all-nodes stability shape: one
/// unit-current stimulus per probed node) under one solver configuration.
/// magnitude[ri][fi] of the response at the injected node.
std::vector<std::vector<real>> run_sweep(const workload& w,
                                         const engine::linearized_snapshot& snap,
                                         const std::vector<real>& freqs,
                                         const std::vector<engine::sweep_engine::injection>& inj,
                                         const engine::solver_tuning& tuning,
                                         engine::sweep_stats* stats)
{
    engine::sweep_engine_options eopt;
    eopt.threads = 1;
    eopt.tuning = tuning;
    eopt.stats = stats;
    std::vector<std::vector<real>> mag(inj.size(), std::vector<real>(freqs.size(), 0.0));
    engine::sweep_engine(eopt).run_injections(
        snap, freqs, inj,
        [&mag, &inj](std::size_t fi, std::size_t ri, std::span<const cplx> sol) {
            mag[ri][fi] = std::abs(sol[inj[ri].index]);
        });
    return mag;
}

double max_rel_err(const std::vector<std::vector<real>>& a,
                   const std::vector<std::vector<real>>& b)
{
    double worst = 0.0;
    for (std::size_t k = 0; k < a.size(); ++k)
        for (std::size_t f = 0; f < a[k].size(); ++f) {
            const double scale = std::max({std::fabs(a[k][f]), std::fabs(b[k][f]), 1e-30});
            worst = std::max(worst, std::fabs(a[k][f] - b[k][f]) / scale);
        }
    return worst;
}

/// Time per frequency point of the four solver configurations, serial,
/// on a dense enough grid (40/decade) that neighboring points fall
/// inside the warm-start eligibility window (ratio 1.059 < 1.1).
void print_sweep_ablation(const char* title, std::size_t nprobes,
                          const std::vector<std::size_t>& sizes, int repeats)
{
    std::puts("==============================================================================");
    std::printf("%s\n", title);
    std::puts("      pr5 = count ordering + scalar kernel + cold refactor per frequency");
    std::puts("==============================================================================");
    std::puts("kind     unknowns  mode            ms/freq   speedup   cold   warm   max err");
    std::puts("------------------------------------------------------------------------------");

    const std::vector<sweep_mode> modes = {
        {"pr5", {numeric::column_ordering::count, false, false}},
        {"amd", {numeric::column_ordering::amd, false, false}},
        {"amd_simd", {numeric::column_ordering::amd, true, false}},
        {"amd_simd_warm", {numeric::column_ordering::amd, true, true}},
    };
    const std::vector<real> freqs = numeric::log_grid(1e4, 1e7, 40);

    for (const std::string kind : {"ladder", "rcmesh"}) {
        for (const std::size_t size : sizes) {
            workload w(kind, size);
            engine::snapshot_options sopt;
            sopt.gshunt = 1e-9;
            sopt.zero_all_sources = true;
            const engine::linearized_snapshot snap(w.net.ckt, w.op, sopt);

            // Unit-current probes spread evenly over the non-forced nodes
            // (the stability sweeps' stimulus shape, bounded so the
            // per-frequency batch cost stays comparable across sizes).
            const std::vector<bool> forced = w.net.ckt.source_forced_nodes();
            std::vector<engine::sweep_engine::injection> inj;
            const std::size_t nodes = w.net.ckt.node_count();
            const std::size_t stride = std::max<std::size_t>(1, nodes / (nprobes + 1));
            for (std::size_t k = 0; k < nodes && inj.size() < nprobes; k += stride)
                if (!forced[k])
                    inj.push_back({k, cplx{1.0, 0.0}});

            std::vector<std::vector<real>> baseline;
            double pr5_ms = 0.0;
            // Above ~4k unknowns a single pass is already seconds long and
            // far above timer noise; best-of-N only matters for the small
            // fast cases.
            const int reps = size > 4000 ? 1 : repeats;
            for (const sweep_mode& m : modes) {
                engine::sweep_stats stats;
                std::vector<std::vector<real>> mag;
                double ms = 1e300;
                for (int rep = 0; rep < reps; ++rep) {
                    engine::sweep_stats fresh;
                    ms = std::min(ms, time_ms([&] {
                        mag = run_sweep(w, snap, freqs, inj, m.tuning, &fresh);
                    }));
                    if (rep + 1 == reps) {
                        stats.cold_factors = fresh.cold_factors.load();
                        stats.warm_accepts = fresh.warm_accepts.load();
                        stats.warm_fallbacks = fresh.warm_fallbacks.load();
                    }
                }
                const double per_freq = ms / static_cast<double>(freqs.size());
                if (baseline.empty()) {
                    baseline = mag;
                    pr5_ms = ms;
                }
                const double err = max_rel_err(baseline, mag);
                std::printf("%-8s %8zu  %-14s %8.4f   %6.2fx  %5zu  %5zu   %.2g\n",
                            kind.c_str(), snap.size(), m.name, per_freq, pr5_ms / ms,
                            stats.cold_factors.load(), stats.warm_accepts.load(), err);
                results().push_back({"scaling_sweep", kind, snap.size(), m.name,
                                     static_cast<long long>(inj.size()), -1, per_freq,
                                     static_cast<long long>(stats.cold_factors.load()),
                                     static_cast<long long>(stats.warm_accepts.load()),
                                     static_cast<long long>(stats.warm_fallbacks.load()), err});
            }
        }
    }
    std::puts("");
}

} // namespace

int main(int argc, char** argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;

    const char* title24 = "A5b — batched sweep, ms per frequency point (serial, 24 probes, "
                          "40 ppd)";
    const char* title1 = "A5c — single-probe sweep, ms per frequency point (serial, 1 probe, "
                         "40 ppd)";
    if (quick) {
        // CI smoke: one ~2k-unknown point per kind, single timing pass.
        print_fill_table({2048});
        print_sweep_ablation(title24, 24, {2048}, 1);
        print_sweep_ablation(title1, 1, {2048}, 1);
    } else {
        print_fill_table({512, 2048, 8192});
        print_sweep_ablation(title24, 24, {512, 2048}, 3);
        print_sweep_ablation(title1, 1, {512, 2048, 8192}, 3);
    }
    emit_json();
    return 0;
}
