// A3 — formula ablation: the paper's eq. (1.3) transcribed literally
// (derivative, normalize, derivative, normalize) versus the log-log
// curvature identity P = d^2 ln|T| / d(ln w)^2 used by the tool. The two
// are analytically identical; this quantifies their different
// discretization error and cost.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "core/stability_plot.h"
#include "numeric/differentiation.h"
#include "numeric/rational.h"

namespace {

using namespace acstab;

void print_ablation()
{
    std::puts("==============================================================================");
    std::puts("A3 — eq.(1.3) direct discretization vs log-log curvature identity");
    std::puts("     peak error relative to -1/zeta^2, zeta = 0.2, fn = 1 MHz");
    std::puts("==============================================================================");
    std::puts(" ppd | curvature form      direct eq.(1.3) form");
    std::puts("------------------------------------------------------------------------------");
    const auto t = numeric::rational::second_order_lowpass(0.2, to_omega(1e6));
    for (const std::size_t ppd : {10u, 20u, 40u, 80u, 160u}) {
        core::sweep_spec sweep;
        sweep.fstart = 1e3;
        sweep.fstop = 1e9;
        sweep.points_per_decade = ppd;
        const std::vector<real> freqs = sweep.frequencies();
        std::vector<real> mag(freqs.size());
        for (std::size_t i = 0; i < freqs.size(); ++i)
            mag[i] = t.magnitude(to_omega(freqs[i]));

        std::printf("%4zu |", ppd);
        for (const bool direct : {false, true}) {
            core::plot_options popt;
            popt.use_direct_formula = direct;
            const auto plot = core::compute_stability_plot(freqs, mag, popt);
            const auto* peak = plot.dominant_pole();
            if (peak == nullptr) {
                std::printf("  %18s", "n/a");
                continue;
            }
            std::printf("  %8.3f (%5.2f%%)  ", peak->value,
                        100.0 * std::fabs(peak->value + 25.0) / 25.0);
        }
        std::puts("");
    }
    std::puts("\nBoth converge to -25; the curvature form needs one derivative pass instead");
    std::puts("of two, and is what the tool uses by default.\n");
}

void bm_curvature_form(benchmark::State& state)
{
    const auto t = numeric::rational::second_order_lowpass(0.2, to_omega(1e6));
    core::sweep_spec sweep;
    sweep.points_per_decade = 60;
    const std::vector<real> freqs = sweep.frequencies();
    std::vector<real> mag(freqs.size());
    for (std::size_t i = 0; i < freqs.size(); ++i)
        mag[i] = t.magnitude(to_omega(freqs[i]));
    for (auto _ : state) {
        const auto p = numeric::log_log_curvature(freqs, mag);
        benchmark::DoNotOptimize(p.data());
    }
}
BENCHMARK(bm_curvature_form);

void bm_direct_form(benchmark::State& state)
{
    const auto t = numeric::rational::second_order_lowpass(0.2, to_omega(1e6));
    core::sweep_spec sweep;
    sweep.points_per_decade = 60;
    const std::vector<real> freqs = sweep.frequencies();
    std::vector<real> mag(freqs.size());
    for (std::size_t i = 0; i < freqs.size(); ++i)
        mag[i] = t.magnitude(to_omega(freqs[i]));
    for (auto _ : state) {
        const auto p = numeric::stability_function_direct(freqs, mag);
        benchmark::DoNotOptimize(p.data());
    }
}
BENCHMARK(bm_direct_form);

} // namespace

int main(int argc, char** argv)
{
    print_ablation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
