// A2 — solver ablation: dense reference LU vs sparse Gilbert–Peierls on
// growing RC ladders (complex AC solves), linearize-once + factor-once
// (sweep engine) vs re-stamp-per-frequency, engine thread scaling on the
// all-nodes stability sweep, and (A2c) the symbolic-sharing + batched-
// solve axis on the shipped follower.sp netlist: PR 1 engine path
// (per-worker symbolic analysis, per-RHS allocating solves) vs shared
// symbolic vs shared symbolic + batched solves. Also audits that the
// steady-state sweep loop performs zero heap allocations per frequency
// point, via a global operator-new counter, and (A3) compares the fixed
// 40/decade grid against the adaptive rational-fit sweep on the three
// shipped netlists (factor counts, wall time, worst phase-margin delta).
// A4 measures corner-farm throughput: the same TEMP campaign executed as
// one process with N point-level threads vs N independent shard
// PROCESSES (this binary re-spawned in a hidden --farm-shard mode),
// merged and verified byte-identical.
// Prints scaling tables plus one machine-readable JSON array (the
// ACSTAB_BENCH_JSON line) for the bench trajectory; benchmarks both paths.
#include <benchmark/benchmark.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <new>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "circuits/opamp.h"
#include "circuits/rlc.h"
#include "core/analyzer.h"
#include "core/sweeps.h"
#include "engine/linearized_snapshot.h"
#include "engine/reference_sweep.h"
#include "engine/sweep_engine.h"
#include "farm/campaign.h"
#include "farm/executor.h"
#include "numeric/sparse_lu.h"
#include "spice/ac_analysis.h"
#include "spice/circuit.h"
#include "spice/dc_analysis.h"
#include "spice/parser/netlist_parser.h"

#ifndef ACSTAB_NETLIST_DIR
#define ACSTAB_NETLIST_DIR "netlists"
#endif

// ---------------------------------------------------------------------------
// Global allocation counter: every operator new bumps one relaxed atomic,
// so the difference in counts between two sweeps of different lengths
// measures the per-frequency allocation rate of the steady-state loop.

namespace {
std::atomic<std::size_t> g_alloc_count{0};
} // namespace

void* operator new(std::size_t size)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size))
        return p;
    throw std::bad_alloc{};
}

void* operator new[](std::size_t size)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size))
        return p;
    throw std::bad_alloc{};
}

void* operator new(std::size_t size, std::align_val_t align)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    void* p = nullptr;
    // posix_memalign, not std::aligned_alloc: operator new sizes need not
    // be multiples of the alignment.
    if (posix_memalign(&p, static_cast<std::size_t>(align), size) != 0)
        throw std::bad_alloc{};
    return p;
}

void* operator new[](std::size_t size, std::align_val_t align)
{
    return operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace acstab;

struct measurement {
    std::string bench;
    std::string mode;
    std::size_t threads = 1;
    double ms = 0.0;
    double max_rel_err = 0.0;     ///< vs the serial re-stamp baseline
    double allocs_per_freq = -1.0; ///< steady-state heap allocations per frequency (-1 = n/a)
    long long factors = -1;        ///< LU factorizations of the sweep (-1 = n/a)
    double max_dpm_deg = -1.0;     ///< worst phase-margin delta vs fixed grid [deg] (-1 = n/a)
};

std::vector<measurement>& results()
{
    static std::vector<measurement> r;
    return r;
}

void emit_json()
{
    std::fputs("ACSTAB_BENCH_JSON [", stdout);
    for (std::size_t i = 0; i < results().size(); ++i) {
        const measurement& m = results()[i];
        std::printf("%s{\"bench\":\"%s\",\"mode\":\"%s\",\"threads\":%zu,"
                    "\"ms\":%.4f,\"max_rel_err\":%.3g,\"allocs_per_freq\":%.3f,"
                    "\"factors\":%lld,\"max_dpm_deg\":%.4f}",
                    i == 0 ? "" : ",", m.bench.c_str(), m.mode.c_str(), m.threads, m.ms,
                    m.max_rel_err, m.allocs_per_freq, m.factors, m.max_dpm_deg);
    }
    std::puts("]");
}

double time_ac_ms(spice::circuit& c, spice::solver_kind kind, int repeats)
{
    const spice::dc_result op = spice::dc_operating_point(c);
    std::vector<real> freqs;
    for (int i = 0; i < 20; ++i)
        freqs.push_back(1e3 * std::pow(10.0, i * 0.3));
    spice::ac_options opt;
    opt.solver = kind;
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
        const spice::ac_result res = spice::ac_sweep(c, freqs, op.solution, opt);
        benchmark::DoNotOptimize(res.solution.data());
    }
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(stop - start).count() / repeats;
}

void print_ablation()
{
    std::puts("==============================================================================");
    std::puts("A2 — dense vs sparse MNA solves on RC ladders (20-point AC sweep, ms)");
    std::puts("==============================================================================");
    std::puts("sections  unknowns   dense [ms]   sparse [ms]   speedup");
    std::puts("------------------------------------------------------------------------------");
    for (const std::size_t sections : {10u, 40u, 160u, 640u}) {
        spice::circuit c;
        circuits::build_rc_ladder(c, sections);
        c.finalize();
        const int repeats = sections > 100 ? 1 : 5;
        const double dense = time_ac_ms(c, spice::solver_kind::dense, repeats);
        const double sparse = time_ac_ms(c, spice::solver_kind::sparse, repeats);
        std::printf("%8zu  %8zu   %10.2f   %11.2f   %7.1fx\n", sections, c.unknown_count(),
                    dense, sparse, dense / sparse);
    }

    std::puts("");
}

/// The pre-engine all-nodes algorithm: re-stamp every device, rebuild the
/// triplet matrix and freshly factor (full symbolic analysis) at every
/// frequency, then back-solve one unit-current RHS per node. Serial.
/// magnitude[node][freq].
std::vector<std::vector<real>> allnodes_restamp_baseline(spice::circuit& c,
                                                         const std::vector<real>& op,
                                                         const std::vector<real>& freqs,
                                                         real gshunt)
{
    c.finalize();
    const std::size_t n = c.unknown_count();
    const std::size_t nodes = c.node_count();
    const std::vector<bool> forced = c.source_forced_nodes();
    std::vector<std::vector<real>> magnitude(nodes, std::vector<real>(freqs.size(), 0.0));
    std::vector<cplx> rhs(n, cplx{});
    for (std::size_t fi = 0; fi < freqs.size(); ++fi) {
        spice::ac_params p;
        p.omega = to_omega(freqs[fi]);
        p.zero_all_sources = true;
        spice::system_builder<cplx> b(n);
        for (const auto& dev : c.devices())
            dev->stamp_ac(op, p, b);
        for (std::size_t i = 0; i < nodes; ++i)
            b.add(static_cast<spice::node_id>(i), static_cast<spice::node_id>(i),
                  cplx{gshunt, 0.0});
        const spice::factored_system<cplx> fact(b, spice::solver_kind::sparse);
        for (std::size_t k = 0; k < nodes; ++k) {
            if (forced[k])
                continue;
            std::fill(rhs.begin(), rhs.end(), cplx{});
            rhs[k] = cplx{1.0, 0.0};
            magnitude[k][fi] = std::abs(fact.solve(rhs)[k]);
        }
    }
    return magnitude;
}

/// A faithful replica of the PR 1 engine hot loop (serial): one symbolic
/// analysis per worker, per-frequency numeric refactorization, then per
/// right-hand side an O(n) scratch fill, an allocating solve, a residual
/// guard (with a temporary SpMV) on the first RHS only, and — as in the
/// real PR 1 run_chunks — each solution vector handed to a std::function
/// sink by move. This is the baseline the shared-symbolic + batched path
/// is measured against.
std::vector<std::vector<real>> allnodes_pr1_path(spice::circuit& c, const std::vector<real>& op,
                                                 const std::vector<real>& freqs, real gshunt)
{
    c.finalize();
    const std::size_t nodes = c.node_count();
    const std::vector<bool> forced = c.source_forced_nodes();
    engine::snapshot_options sopt;
    sopt.gshunt = gshunt;
    sopt.zero_all_sources = true;
    const engine::linearized_snapshot snap(c, op, sopt);
    std::vector<std::size_t> injections;
    for (std::size_t k = 0; k < nodes; ++k)
        if (!forced[k])
            injections.push_back(k);

    numeric::csc_matrix<cplx> work = snap.make_workspace();
    snap.assemble(to_omega(freqs[freqs.size() / 2]), work);
    numeric::sparse_lu<cplx>::options lopt;
    lopt.prepare_refactor = true;
    std::optional<numeric::sparse_lu<cplx>> lu(std::in_place, work, lopt);
    bool refactored = false;

    std::vector<std::vector<real>> magnitude(nodes, std::vector<real>(freqs.size(), 0.0));
    const std::function<void(std::size_t, std::size_t, std::vector<cplx>&&)> out
        = [&magnitude, &injections](std::size_t fi, std::size_t ri, std::vector<cplx>&& sol) {
              magnitude[injections[ri]][fi] = std::abs(sol[injections[ri]]);
          };
    std::vector<cplx> rhs(snap.size(), cplx{});
    for (std::size_t fi = 0; fi < freqs.size(); ++fi) {
        snap.assemble(to_omega(freqs[fi]), work);
        try {
            lu->refactor(work);
            refactored = true;
        } catch (const numeric_error&) {
            lu.emplace(work, lopt);
            refactored = false;
        }
        for (std::size_t ri = 0; ri < injections.size(); ++ri) {
            std::fill(rhs.begin(), rhs.end(), cplx{});
            rhs[injections[ri]] = cplx{1.0, 0.0};
            std::vector<cplx> x = lu->solve(rhs);
            if (refactored) {
                refactored = false;
                const std::vector<cplx> yx = work.multiply(x);
                real rnorm = 0.0;
                for (std::size_t i = 0; i < yx.size(); ++i)
                    rnorm = std::max(rnorm, std::abs(yx[i] - rhs[i]));
                if (rnorm > 1e-10) {
                    lu.emplace(work, lopt);
                    x = lu->solve(rhs);
                }
            }
            out(fi, ri, std::move(x));
        }
    }
    return magnitude;
}

/// The same sweep through the unified engine: linearize once, one shared
/// pattern, refactor per frequency, batched multi-RHS, threaded.
std::vector<std::vector<real>> allnodes_engine(spice::circuit& c, const std::vector<real>& op,
                                               const std::vector<real>& freqs, real gshunt,
                                               std::size_t threads, bool shared_symbolic = true,
                                               std::size_t rhs_block = 32)
{
    c.finalize();
    const std::size_t nodes = c.node_count();
    const std::vector<bool> forced = c.source_forced_nodes();
    engine::snapshot_options sopt;
    sopt.gshunt = gshunt;
    sopt.zero_all_sources = true;
    const engine::linearized_snapshot snap(c, op, sopt);

    std::vector<engine::sweep_engine::injection> injections;
    for (std::size_t k = 0; k < nodes; ++k)
        if (!forced[k])
            injections.push_back({k, cplx{1.0, 0.0}});

    std::vector<std::vector<real>> magnitude(nodes, std::vector<real>(freqs.size(), 0.0));
    engine::sweep_engine_options eopt;
    eopt.threads = threads;
    eopt.shared_symbolic = shared_symbolic;
    eopt.rhs_block = rhs_block;
    engine::sweep_engine(eopt).run_injections(
        snap, freqs, injections,
        [&magnitude, &injections](std::size_t fi, std::size_t ri, std::span<const cplx> sol) {
            magnitude[injections[ri].index][fi] = std::abs(sol[injections[ri].index]);
        });
    return magnitude;
}

double max_rel_err(const std::vector<std::vector<real>>& a,
                   const std::vector<std::vector<real>>& b)
{
    double worst = 0.0;
    for (std::size_t k = 0; k < a.size(); ++k)
        for (std::size_t f = 0; f < a[k].size(); ++f) {
            const double scale = std::max({std::fabs(a[k][f]), std::fabs(b[k][f]), 1e-30});
            worst = std::max(worst, std::fabs(a[k][f] - b[k][f]) / scale);
        }
    return worst;
}

double time_ms(const std::function<void()>& fn)
{
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(stop - start).count();
}

void print_engine_ablation()
{
    std::puts("==============================================================================");
    std::puts("A2b — all-nodes stability sweep on the op-amp buffer (40 ppd, 1 kHz - 1 GHz)");
    std::puts("      re-stamp-per-frequency vs linearize-once engine, with thread scaling");
    std::puts("==============================================================================");
    spice::circuit c;
    (void)circuits::build_opamp_buffer(c);
    const spice::dc_result op = spice::dc_operating_point(c);
    core::sweep_spec sweep;
    sweep.points_per_decade = 40;
    const std::vector<real> freqs = sweep.frequencies();
    const real gshunt = 1e-9;

    std::vector<std::vector<real>> baseline;
    const double restamp_ms = time_ms([&] {
        baseline = allnodes_restamp_baseline(c, op.solution, freqs, gshunt);
    });
    std::printf("  re-stamp per frequency (serial)   : %8.1f ms\n", restamp_ms);
    results().push_back({"allnodes_opamp", "restamp", 1, restamp_ms, 0.0, -1.0});

    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        std::vector<std::vector<real>> mag;
        const double ms = time_ms([&] {
            mag = allnodes_engine(c, op.solution, freqs, gshunt, threads);
        });
        const double err = max_rel_err(baseline, mag);
        std::printf("  engine, %zu thread(s)              : %8.1f ms   (%.2fx, max rel err %.2g)\n",
                    threads, ms, restamp_ms / ms, err);
        results().push_back({"allnodes_opamp", "engine", threads, ms, err, -1.0});
    }

    std::puts("\n  single-RHS AC sweep on a 640-section RC ladder (20 points):");
    spice::circuit ladder;
    circuits::build_rc_ladder(ladder, 640);
    const spice::dc_result lop = spice::dc_operating_point(ladder);
    std::vector<real> lfreqs;
    for (int i = 0; i < 20; ++i)
        lfreqs.push_back(1e3 * std::pow(10.0, i * 0.3));
    const double ref_ms = time_ms([&] {
        const spice::ac_result r = engine::reference_ac_sweep(ladder, lfreqs, lop.solution);
        benchmark::DoNotOptimize(r.solution.data());
    });
    std::printf("    re-stamp + fresh factor (serial): %8.1f ms\n", ref_ms);
    results().push_back({"ac_ladder640", "restamp", 1, ref_ms, 0.0, -1.0});
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        spice::ac_options opt;
        opt.threads = threads;
        const double ms = time_ms([&] {
            const spice::ac_result r = spice::ac_sweep(ladder, lfreqs, lop.solution, opt);
            benchmark::DoNotOptimize(r.solution.data());
        });
        std::printf("    engine, %zu thread(s)            : %8.1f ms   (%.2fx)\n", threads, ms,
                    ref_ms / ms);
        results().push_back({"ac_ladder640", "engine", threads, ms, 0.0, -1.0});
    }

    std::puts("\nend-to-end analyze_all_nodes (report building included, ms):");
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        spice::circuit cc;
        (void)circuits::build_opamp_buffer(cc);
        core::stability_options opt;
        opt.sweep.points_per_decade = 40;
        opt.threads = threads;
        core::stability_analyzer an(cc, opt);
        (void)an.operating_point();
        const double ms = time_ms([&] {
            const core::stability_report rep = an.analyze_all_nodes();
            benchmark::DoNotOptimize(rep.nodes.data());
        });
        std::printf("  %zu thread(s): %8.1f ms\n", threads, ms);
        results().push_back({"analyze_all_nodes_opamp", "engine", threads, ms, 0.0, -1.0});
    }
    std::puts("");
}

/// A2c: the symbolic-sharing + batched-solve ablation on the shipped
/// follower netlist (the PR's acceptance workload), all serial so the
/// solver path — not scheduling — is what is measured.
void print_solver_path_ablation()
{
    std::puts("==============================================================================");
    std::puts("A2c — shared symbolic + batched solves, netlists/follower.sp all-nodes sweep");
    std::puts("      (100 kHz - 10 GHz, 50 ppd, serial; speedups vs the PR 1 engine path)");
    std::puts("==============================================================================");
    spice::parsed_netlist net = spice::parse_netlist_file(std::string(ACSTAB_NETLIST_DIR)
                                                          + "/follower.sp");
    spice::circuit& c = net.ckt;
    const spice::dc_result op = spice::dc_operating_point(c);
    core::sweep_spec sweep;
    sweep.fstart = 1e5;
    sweep.fstop = 1e10;
    sweep.points_per_decade = 50;
    const std::vector<real> freqs = sweep.frequencies();
    const real gshunt = 1e-9;
    // Each mode sweep is ~0.1 ms, far below scheduler noise: time groups
    // of repeats and report the best group (the standard noise floor).
    const int repeats = 50;
    const int groups = 6;

    std::vector<std::vector<real>> baseline = allnodes_restamp_baseline(c, op.solution, freqs,
                                                                        gshunt);

    struct mode {
        const char* name;
        const char* label;
        std::function<std::vector<std::vector<real>>()> run;
    };
    const std::vector<mode> modes = {
        {"pr1_path", "PR 1 path (per-worker symbolic, alloc solves)",
         [&] { return allnodes_pr1_path(c, op.solution, freqs, gshunt); }},
        {"per_chunk_unbatched", "per-chunk symbolic, unbatched",
         [&] { return allnodes_engine(c, op.solution, freqs, gshunt, 1, false, 1); }},
        {"shared_symbolic", "shared symbolic, unbatched",
         [&] { return allnodes_engine(c, op.solution, freqs, gshunt, 1, true, 1); }},
        {"shared_batched", "shared symbolic + batched solves",
         [&] { return allnodes_engine(c, op.solution, freqs, gshunt, 1, true, 32); }},
    };

    double pr1_ms = 0.0;
    for (const mode& m : modes) {
        std::vector<std::vector<real>> mag;
        (void)m.run(); // warm caches (snapshot symbolic, thread pool)
        double ms = 1e300;
        for (int g = 0; g < groups; ++g) {
            const double group_ms = time_ms([&] {
                                        for (int r = 0; r < repeats; ++r) {
                                            mag = m.run();
                                            benchmark::DoNotOptimize(mag.data());
                                        }
                                    })
                                    / repeats;
            ms = std::min(ms, group_ms);
        }
        const double err = max_rel_err(baseline, mag);
        if (pr1_ms == 0.0)
            pr1_ms = ms;
        std::printf("  %-46s: %8.3f ms   (%.2fx, max rel err %.2g)\n", m.label, ms, pr1_ms / ms,
                    err);
        results().push_back({"allnodes_follower", m.name, 1, ms, err, -1.0});
    }
    std::puts("");
}

/// Verify the zero-allocations-per-frequency claim: run the follower
/// all-nodes sweep at two grid densities and attribute the difference in
/// global operator-new counts to the extra frequency points. Setup costs
/// (snapshot, worker staging, one symbolic analysis per run) are identical
/// in both runs and cancel.
void print_alloc_audit()
{
    std::puts("==============================================================================");
    std::puts("A2d — steady-state allocation audit (operator-new deltas between grid sizes)");
    std::puts("==============================================================================");
    spice::parsed_netlist net = spice::parse_netlist_file(std::string(ACSTAB_NETLIST_DIR)
                                                          + "/follower.sp");
    spice::circuit& c = net.ckt;
    const spice::dc_result op = spice::dc_operating_point(c);

    const auto sweep_allocs = [&](std::size_t ppd, std::size_t* nf) -> std::size_t {
        core::sweep_spec sweep;
        sweep.fstart = 1e5;
        sweep.fstop = 1e10;
        sweep.points_per_decade = ppd;
        const std::vector<real> freqs = sweep.frequencies();
        *nf = freqs.size();
        const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
        const auto mag = allnodes_engine(c, op.solution, freqs, 1e-9, 1);
        benchmark::DoNotOptimize(mag.data());
        return g_alloc_count.load(std::memory_order_relaxed) - before;
    };

    std::size_t nf_small = 0, nf_large = 0;
    const std::size_t a_small = sweep_allocs(50, &nf_small);
    const std::size_t a_large = sweep_allocs(100, &nf_large);
    const double per_freq = static_cast<double>(a_large) - static_cast<double>(a_small);
    const double rate = per_freq / static_cast<double>(nf_large - nf_small);
    std::printf("  %zu points: %zu allocs; %zu points: %zu allocs\n", nf_small, a_small,
                nf_large, a_large);
    std::printf("  steady-state allocations per added frequency point: %.3f\n\n", rate);
    results().push_back({"alloc_audit_follower", "engine_steady_state", 1, 0.0, 0.0, rate});
}

/// A3 — adaptive frequency grid vs the fixed 40/decade sweep on the three
/// shipped netlists: LU factorization counts, wall time, and the worst
/// phase-margin delta across all peaked nodes. The adaptive_follower rows
/// back the CI guard (adaptive factor count must stay <= 1/3 of fixed).
void print_adaptive_ablation()
{
    std::puts("==============================================================================");
    std::puts("A3 — fixed 40/decade grid vs adaptive rational-fit sweep (all-nodes analysis)");
    std::puts("==============================================================================");
    std::puts("netlist          mode        factors   wall [ms]   max |dPM| [deg]");
    std::puts("------------------------------------------------------------------------------");

    struct workload {
        const char* key;
        const char* file;
        real fstart;
        real fstop;
    };
    const std::vector<workload> workloads = {
        {"adaptive_follower", "follower.sp", 1e5, 1e10},
        {"adaptive_rlc_tank", "rlc_tank.sp", 1e4, 1e8},
        {"adaptive_two_pole", "two_pole_loop.sp", 1e2, 1e8},
    };
    const int repeats = 20;
    const int groups = 3;

    for (const workload& w : workloads) {
        spice::parsed_netlist net = spice::parse_netlist_file(std::string(ACSTAB_NETLIST_DIR)
                                                              + "/" + w.file);
        const auto run_mode = [&](bool adaptive, core::stability_report& rep) {
            core::stability_options opt;
            opt.sweep.fstart = w.fstart;
            opt.sweep.fstop = w.fstop;
            opt.sweep.points_per_decade = 40;
            opt.adaptive = adaptive;
            core::stability_analyzer an(net.ckt, opt);
            (void)an.operating_point();
            rep = an.analyze_all_nodes(); // warm caches, keep the report
            double ms = 1e300;
            for (int g = 0; g < groups; ++g) {
                const double group_ms = time_ms([&] {
                                            for (int r = 0; r < repeats; ++r) {
                                                rep = an.analyze_all_nodes();
                                                benchmark::DoNotOptimize(rep.nodes.data());
                                            }
                                        })
                                        / repeats;
                ms = std::min(ms, group_ms);
            }
            return ms;
        };

        core::stability_report fixed, adaptive;
        const double fixed_ms = run_mode(false, fixed);
        const double adaptive_ms = run_mode(true, adaptive);

        // Worst phase-margin delta over nodes both grids agree have peaks.
        double max_dpm = 0.0;
        for (const core::node_stability& fn : fixed.nodes) {
            if (!fn.has_peak)
                continue;
            for (const core::node_stability& an : adaptive.nodes)
                if (an.node == fn.node && an.has_peak)
                    max_dpm = std::max(max_dpm, std::fabs(an.phase_margin_est_deg
                                                          - fn.phase_margin_est_deg));
        }

        std::printf("%-16s fixed     %8zu   %9.3f   %s\n", w.file, fixed.factorizations,
                    fixed_ms, "(reference)");
        std::printf("%-16s adaptive  %8zu   %9.3f   %15.4f   (%.1fx fewer factors)\n", w.file,
                    adaptive.factorizations, adaptive_ms, max_dpm,
                    static_cast<double>(fixed.factorizations)
                        / static_cast<double>(std::max<std::size_t>(1,
                                                                    adaptive.factorizations)));
        results().push_back({w.key, "fixed_grid", 1, fixed_ms, 0.0, -1.0,
                             static_cast<long long>(fixed.factorizations), -1.0});
        results().push_back({w.key, "adaptive", 1, adaptive_ms, 0.0, -1.0,
                             static_cast<long long>(adaptive.factorizations), max_dpm});
    }
    std::puts("");
}

// ---------------------------------------------------------------------------
// A4 — corner-farm throughput: the same TEMP campaign on follower.sp as
// (a) ONE process dispatching points onto N pool threads and (b) N
// independent shard PROCESSES (this very binary re-executed in the
// hidden --farm-shard mode), i.e. the paper's computer-farm layout on a
// single host. The process farm pays exec + netlist re-parse + JSON
// serialization per shard but shares nothing; the merged reports of both
// layouts must be byte-identical (verified here, as in CI's smoke job).

[[nodiscard]] std::string slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

[[nodiscard]] farm::campaign_spec make_farm_spec()
{
    farm::campaign_spec spec;
    spec.netlist = std::string(ACSTAB_NETLIST_DIR) + "/follower.sp";
    spec.node = "f_out";
    spec.fstart = 1e5;
    spec.fstop = 1e10;
    spec.points_per_decade = 50;
    for (int i = 0; i < 24; ++i)
        spec.grid.temps.push_back(-40.0 + 165.0 * static_cast<real>(i) / 23.0);
    return spec;
}

[[nodiscard]] std::string merged_report_bytes(const farm::campaign_spec& spec,
                                              const std::vector<std::string>& shard_paths)
{
    std::vector<farm::json_value> docs;
    docs.reserve(shard_paths.size());
    for (const std::string& path : shard_paths)
        docs.push_back(farm::json_value::parse(slurp(path)));
    return farm::merge_shards(spec, docs).dump() + "\n";
}

void print_farm_ablation(const char* self_exe)
{
    std::puts("==============================================================================");
    std::puts("A4 — corner-farm throughput, 24-point TEMP campaign on netlists/follower.sp");
    std::puts("      1 process x N pool threads vs N shard processes (exec + parse + JSON");
    std::puts("      per shard); both merged, reports verified byte-identical");
    std::puts("==============================================================================");
    const farm::campaign_spec spec = make_farm_spec();
    // Prefer the kernel's view of this binary: argv[0] may be relative
    // to a directory the shard children do not inherit verbatim.
    if (access("/proc/self/exe", X_OK) == 0)
        self_exe = "/proc/self/exe";
    const std::string dir = "/tmp/acstab_bench_farm." + std::to_string(getpid());
    const std::string plan_path = dir + "/plan.json";
    if (std::system(("mkdir -p " + dir).c_str()) != 0) {
        std::puts("  (skipped: cannot create scratch directory)");
        return;
    }
    {
        std::ofstream out(plan_path, std::ios::binary);
        out << farm::to_json(spec).dump() << "\n";
    }

    // Reference merged bytes from an in-process single-shard run.
    std::string reference;
    {
        const std::vector<farm::point_record> records = farm::run_shard(spec, 0, 1, 1);
        std::ofstream out(dir + "/ref.json", std::ios::binary);
        out << farm::shard_to_json(spec, 0, 1, records).dump() << "\n";
    }
    reference = merged_report_bytes(spec, {dir + "/ref.json"});

    for (const std::size_t n : {1u, 2u, 4u}) {
        // (a) one process, N point-level pool threads.
        const double threads_ms = time_ms([&] {
            const std::vector<farm::point_record> records = farm::run_shard(spec, 0, 1, n);
            benchmark::DoNotOptimize(records.data());
        });

        // (b) N shard processes: spawn this binary once per shard and
        // wait for the farm to drain, then merge the shard files.
        std::vector<std::string> shard_paths;
        bool spawn_ok = true;
        const double procs_ms = time_ms([&] {
            std::vector<pid_t> children;
            for (std::size_t k = 0; k < n; ++k) {
                const std::string out_path
                    = dir + "/shard" + std::to_string(k) + "of" + std::to_string(n) + ".json";
                shard_paths.push_back(out_path);
                const std::string karg = std::to_string(k);
                const std::string narg = std::to_string(n);
                const pid_t pid = fork();
                if (pid == 0) {
                    execl(self_exe, self_exe, "--farm-shard", plan_path.c_str(), karg.c_str(),
                          narg.c_str(), out_path.c_str(), static_cast<char*>(nullptr));
                    _exit(127); // exec failed
                }
                if (pid < 0)
                    spawn_ok = false;
                else
                    children.push_back(pid);
            }
            for (const pid_t pid : children) {
                int status = 0;
                waitpid(pid, &status, 0);
                spawn_ok = spawn_ok && WIFEXITED(status) && WEXITSTATUS(status) == 0;
            }
        });
        if (!spawn_ok) {
            std::printf("  N=%zu: shard process spawn failed; skipping\n", n);
            continue;
        }
        const bool identical = merged_report_bytes(spec, shard_paths) == reference;
        std::printf("  N=%zu: 1 proc x %zu threads %8.1f ms   %zu shard procs %8.1f ms   "
                    "merge %s\n",
                    n, n, threads_ms, n, procs_ms, identical ? "byte-identical" : "MISMATCH");
        results().push_back({"farm_follower", "pool_threads", n, threads_ms,
                             identical ? 0.0 : 1.0, -1.0});
        results().push_back({"farm_follower", "shard_procs", n, procs_ms,
                             identical ? 0.0 : 1.0, -1.0});
    }
    (void)std::system(("rm -rf " + dir).c_str());
    std::puts("");
}

/// Hidden child mode: execute one shard of a plan file and write the
/// shard document ("bench_ablation_solver --farm-shard plan k N out").
int run_farm_shard_child(const char* plan_path, const char* k, const char* n,
                         const char* out_path)
{
    try {
        const farm::campaign_spec spec
            = farm::campaign_from_json(farm::json_value::parse(slurp(plan_path)));
        const std::size_t shard = static_cast<std::size_t>(std::atoll(k));
        const std::size_t count = static_cast<std::size_t>(std::atoll(n));
        const std::vector<farm::point_record> records
            = farm::run_shard(spec, shard, count, 1);
        std::ofstream out(out_path, std::ios::binary);
        if (!out)
            return 1;
        out << farm::shard_to_json(spec, shard, count, records).dump() << "\n";
        return 0;
    } catch (const acstab::error& e) {
        std::fprintf(stderr, "farm shard child: %s\n", e.what());
        return 1;
    }
}

void bm_ladder_ac(benchmark::State& state)
{
    spice::circuit c;
    circuits::build_rc_ladder(c, static_cast<std::size_t>(state.range(0)));
    const spice::dc_result op = spice::dc_operating_point(c);
    spice::ac_options opt;
    opt.solver = state.range(1) == 0 ? spice::solver_kind::dense : spice::solver_kind::sparse;
    for (auto _ : state) {
        const spice::ac_result res = spice::ac_sweep(c, {1e6}, op.solution, opt);
        benchmark::DoNotOptimize(res.solution.data());
    }
    state.SetLabel(state.range(1) == 0 ? "dense" : "sparse");
}
BENCHMARK(bm_ladder_ac)->Args({40, 0})->Args({40, 1})->Args({320, 0})->Args({320, 1});

} // namespace

int main(int argc, char** argv)
{
    // Shard-child re-entry MUST precede everything else: the A4 farm
    // ablation spawns this binary once per shard.
    if (argc == 6 && std::strcmp(argv[1], "--farm-shard") == 0)
        return run_farm_shard_child(argv[2], argv[3], argv[4], argv[5]);

    print_ablation();
    print_engine_ablation();
    print_solver_path_ablation();
    print_alloc_audit();
    print_adaptive_ablation();
    print_farm_ablation(argv[0]);
    emit_json();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
