// A2 — solver ablation: dense reference LU vs sparse Gilbert–Peierls on
// growing RC ladders (complex AC solves), linearize-once + factor-once
// (sweep engine) vs re-stamp-per-frequency, and engine thread scaling on
// the all-nodes stability sweep. Prints scaling tables plus one
// machine-readable JSON array (the ACSTAB_BENCH_JSON line) for the bench
// trajectory; benchmarks both paths.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "circuits/opamp.h"
#include "circuits/rlc.h"
#include "core/analyzer.h"
#include "engine/linearized_snapshot.h"
#include "engine/reference_sweep.h"
#include "engine/sweep_engine.h"
#include "spice/ac_analysis.h"
#include "spice/circuit.h"
#include "spice/dc_analysis.h"

namespace {

using namespace acstab;

struct measurement {
    std::string bench;
    std::string mode;
    std::size_t threads = 1;
    double ms = 0.0;
    double max_rel_err = 0.0; ///< vs the serial re-stamp baseline
};

std::vector<measurement>& results()
{
    static std::vector<measurement> r;
    return r;
}

void emit_json()
{
    std::fputs("ACSTAB_BENCH_JSON [", stdout);
    for (std::size_t i = 0; i < results().size(); ++i) {
        const measurement& m = results()[i];
        std::printf("%s{\"bench\":\"%s\",\"mode\":\"%s\",\"threads\":%zu,"
                    "\"ms\":%.4f,\"max_rel_err\":%.3g}",
                    i == 0 ? "" : ",", m.bench.c_str(), m.mode.c_str(), m.threads, m.ms,
                    m.max_rel_err);
    }
    std::puts("]");
}

double time_ac_ms(spice::circuit& c, spice::solver_kind kind, int repeats)
{
    const spice::dc_result op = spice::dc_operating_point(c);
    std::vector<real> freqs;
    for (int i = 0; i < 20; ++i)
        freqs.push_back(1e3 * std::pow(10.0, i * 0.3));
    spice::ac_options opt;
    opt.solver = kind;
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
        const spice::ac_result res = spice::ac_sweep(c, freqs, op.solution, opt);
        benchmark::DoNotOptimize(res.solution.data());
    }
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(stop - start).count() / repeats;
}

void print_ablation()
{
    std::puts("==============================================================================");
    std::puts("A2 — dense vs sparse MNA solves on RC ladders (20-point AC sweep, ms)");
    std::puts("==============================================================================");
    std::puts("sections  unknowns   dense [ms]   sparse [ms]   speedup");
    std::puts("------------------------------------------------------------------------------");
    for (const std::size_t sections : {10u, 40u, 160u, 640u}) {
        spice::circuit c;
        circuits::build_rc_ladder(c, sections);
        c.finalize();
        const int repeats = sections > 100 ? 1 : 5;
        const double dense = time_ac_ms(c, spice::solver_kind::dense, repeats);
        const double sparse = time_ac_ms(c, spice::solver_kind::sparse, repeats);
        std::printf("%8zu  %8zu   %10.2f   %11.2f   %7.1fx\n", sections, c.unknown_count(),
                    dense, sparse, dense / sparse);
    }

    std::puts("");
}

/// The pre-engine all-nodes algorithm: re-stamp every device, rebuild the
/// triplet matrix and freshly factor (full symbolic analysis) at every
/// frequency, then back-solve one unit-current RHS per node. Serial.
/// magnitude[node][freq].
std::vector<std::vector<real>> allnodes_restamp_baseline(spice::circuit& c,
                                                         const std::vector<real>& op,
                                                         const std::vector<real>& freqs,
                                                         real gshunt)
{
    c.finalize();
    const std::size_t n = c.unknown_count();
    const std::size_t nodes = c.node_count();
    const std::vector<bool> forced = c.source_forced_nodes();
    std::vector<std::vector<real>> magnitude(nodes, std::vector<real>(freqs.size(), 0.0));
    std::vector<cplx> rhs(n, cplx{});
    for (std::size_t fi = 0; fi < freqs.size(); ++fi) {
        spice::ac_params p;
        p.omega = to_omega(freqs[fi]);
        p.zero_all_sources = true;
        spice::system_builder<cplx> b(n);
        for (const auto& dev : c.devices())
            dev->stamp_ac(op, p, b);
        for (std::size_t i = 0; i < nodes; ++i)
            b.add(static_cast<spice::node_id>(i), static_cast<spice::node_id>(i),
                  cplx{gshunt, 0.0});
        const spice::factored_system<cplx> fact(b, spice::solver_kind::sparse);
        for (std::size_t k = 0; k < nodes; ++k) {
            if (forced[k])
                continue;
            std::fill(rhs.begin(), rhs.end(), cplx{});
            rhs[k] = cplx{1.0, 0.0};
            magnitude[k][fi] = std::abs(fact.solve(rhs)[k]);
        }
    }
    return magnitude;
}

/// The same sweep through the unified engine: linearize once, one shared
/// pattern, refactor per frequency, batched multi-RHS, threaded.
std::vector<std::vector<real>> allnodes_engine(spice::circuit& c, const std::vector<real>& op,
                                               const std::vector<real>& freqs, real gshunt,
                                               std::size_t threads)
{
    c.finalize();
    const std::size_t nodes = c.node_count();
    const std::vector<bool> forced = c.source_forced_nodes();
    engine::snapshot_options sopt;
    sopt.gshunt = gshunt;
    sopt.zero_all_sources = true;
    const engine::linearized_snapshot snap(c, op, sopt);

    std::vector<engine::sweep_engine::injection> injections;
    for (std::size_t k = 0; k < nodes; ++k)
        if (!forced[k])
            injections.push_back({k, cplx{1.0, 0.0}});

    std::vector<std::vector<real>> magnitude(nodes, std::vector<real>(freqs.size(), 0.0));
    engine::sweep_engine_options eopt;
    eopt.threads = threads;
    engine::sweep_engine(eopt).run_injections(
        snap, freqs, injections,
        [&magnitude, &injections](std::size_t fi, std::size_t ri, std::vector<cplx>&& sol) {
            magnitude[injections[ri].index][fi] = std::abs(sol[injections[ri].index]);
        });
    return magnitude;
}

double max_rel_err(const std::vector<std::vector<real>>& a,
                   const std::vector<std::vector<real>>& b)
{
    double worst = 0.0;
    for (std::size_t k = 0; k < a.size(); ++k)
        for (std::size_t f = 0; f < a[k].size(); ++f) {
            const double scale = std::max({std::fabs(a[k][f]), std::fabs(b[k][f]), 1e-30});
            worst = std::max(worst, std::fabs(a[k][f] - b[k][f]) / scale);
        }
    return worst;
}

void print_engine_ablation()
{
    std::puts("==============================================================================");
    std::puts("A2b — all-nodes stability sweep on the op-amp buffer (40 ppd, 1 kHz - 1 GHz)");
    std::puts("      re-stamp-per-frequency vs linearize-once engine, with thread scaling");
    std::puts("==============================================================================");
    spice::circuit c;
    (void)circuits::build_opamp_buffer(c);
    const spice::dc_result op = spice::dc_operating_point(c);
    core::sweep_spec sweep;
    sweep.points_per_decade = 40;
    const std::vector<real> freqs = sweep.frequencies();
    const real gshunt = 1e-9;

    const auto time_ms = [](const auto& fn) {
        const auto start = std::chrono::steady_clock::now();
        fn();
        const auto stop = std::chrono::steady_clock::now();
        return std::chrono::duration<double, std::milli>(stop - start).count();
    };

    std::vector<std::vector<real>> baseline;
    const double restamp_ms = time_ms([&] {
        baseline = allnodes_restamp_baseline(c, op.solution, freqs, gshunt);
    });
    std::printf("  re-stamp per frequency (serial)   : %8.1f ms\n", restamp_ms);
    results().push_back({"allnodes_opamp", "restamp", 1, restamp_ms, 0.0});

    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        std::vector<std::vector<real>> mag;
        const double ms = time_ms([&] {
            mag = allnodes_engine(c, op.solution, freqs, gshunt, threads);
        });
        const double err = max_rel_err(baseline, mag);
        std::printf("  engine, %zu thread(s)              : %8.1f ms   (%.2fx, max rel err %.2g)\n",
                    threads, ms, restamp_ms / ms, err);
        results().push_back({"allnodes_opamp", "engine", threads, ms, err});
    }

    std::puts("\n  single-RHS AC sweep on a 640-section RC ladder (20 points):");
    spice::circuit ladder;
    circuits::build_rc_ladder(ladder, 640);
    const spice::dc_result lop = spice::dc_operating_point(ladder);
    std::vector<real> lfreqs;
    for (int i = 0; i < 20; ++i)
        lfreqs.push_back(1e3 * std::pow(10.0, i * 0.3));
    const double ref_ms = time_ms([&] {
        const spice::ac_result r = engine::reference_ac_sweep(ladder, lfreqs, lop.solution);
        benchmark::DoNotOptimize(r.solution.data());
    });
    std::printf("    re-stamp + fresh factor (serial): %8.1f ms\n", ref_ms);
    results().push_back({"ac_ladder640", "restamp", 1, ref_ms, 0.0});
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        spice::ac_options opt;
        opt.threads = threads;
        const double ms = time_ms([&] {
            const spice::ac_result r = spice::ac_sweep(ladder, lfreqs, lop.solution, opt);
            benchmark::DoNotOptimize(r.solution.data());
        });
        std::printf("    engine, %zu thread(s)            : %8.1f ms   (%.2fx)\n", threads, ms,
                    ref_ms / ms);
        results().push_back({"ac_ladder640", "engine", threads, ms, 0.0});
    }

    std::puts("\nend-to-end analyze_all_nodes (report building included, ms):");
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        spice::circuit cc;
        (void)circuits::build_opamp_buffer(cc);
        core::stability_options opt;
        opt.sweep.points_per_decade = 40;
        opt.threads = threads;
        core::stability_analyzer an(cc, opt);
        (void)an.operating_point();
        const double ms = time_ms([&] {
            const core::stability_report rep = an.analyze_all_nodes();
            benchmark::DoNotOptimize(rep.nodes.data());
        });
        std::printf("  %zu thread(s): %8.1f ms\n", threads, ms);
        results().push_back({"analyze_all_nodes_opamp", "engine", threads, ms, 0.0});
    }
    std::puts("");
}

void bm_ladder_ac(benchmark::State& state)
{
    spice::circuit c;
    circuits::build_rc_ladder(c, static_cast<std::size_t>(state.range(0)));
    const spice::dc_result op = spice::dc_operating_point(c);
    spice::ac_options opt;
    opt.solver = state.range(1) == 0 ? spice::solver_kind::dense : spice::solver_kind::sparse;
    for (auto _ : state) {
        const spice::ac_result res = spice::ac_sweep(c, {1e6}, op.solution, opt);
        benchmark::DoNotOptimize(res.solution.data());
    }
    state.SetLabel(state.range(1) == 0 ? "dense" : "sparse");
}
BENCHMARK(bm_ladder_ac)->Args({40, 0})->Args({40, 1})->Args({320, 0})->Args({320, 1});

} // namespace

int main(int argc, char** argv)
{
    print_ablation();
    print_engine_ablation();
    emit_json();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
