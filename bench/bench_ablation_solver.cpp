// A2 — solver ablation: dense reference LU vs sparse Gilbert–Peierls on
// growing RC ladders (complex AC solves), and serial vs threaded
// all-nodes sweeps. Prints a scaling table; benchmarks both paths.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "circuits/opamp.h"
#include "circuits/rlc.h"
#include "core/analyzer.h"
#include "spice/ac_analysis.h"
#include "spice/circuit.h"
#include "spice/dc_analysis.h"

namespace {

using namespace acstab;

double time_ac_ms(spice::circuit& c, spice::solver_kind kind, int repeats)
{
    const spice::dc_result op = spice::dc_operating_point(c);
    std::vector<real> freqs;
    for (int i = 0; i < 20; ++i)
        freqs.push_back(1e3 * std::pow(10.0, i * 0.3));
    spice::ac_options opt;
    opt.solver = kind;
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
        const spice::ac_result res = spice::ac_sweep(c, freqs, op.solution, opt);
        benchmark::DoNotOptimize(res.solution.data());
    }
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(stop - start).count() / repeats;
}

void print_ablation()
{
    std::puts("==============================================================================");
    std::puts("A2 — dense vs sparse MNA solves on RC ladders (20-point AC sweep, ms)");
    std::puts("==============================================================================");
    std::puts("sections  unknowns   dense [ms]   sparse [ms]   speedup");
    std::puts("------------------------------------------------------------------------------");
    for (const std::size_t sections : {10u, 40u, 160u, 640u}) {
        spice::circuit c;
        circuits::build_rc_ladder(c, sections);
        c.finalize();
        const int repeats = sections > 100 ? 1 : 5;
        const double dense = time_ac_ms(c, spice::solver_kind::dense, repeats);
        const double sparse = time_ac_ms(c, spice::solver_kind::sparse, repeats);
        std::printf("%8zu  %8zu   %10.2f   %11.2f   %7.1fx\n", sections, c.unknown_count(),
                    dense, sparse, dense / sparse);
    }

    std::puts("\nserial vs threaded all-nodes sweep on the op-amp buffer (ms):");
    for (const std::size_t threads : {1u, 2u, 4u}) {
        spice::circuit c;
        (void)circuits::build_opamp_buffer(c);
        core::stability_options opt;
        opt.sweep.points_per_decade = 40;
        opt.threads = threads;
        core::stability_analyzer an(c, opt);
        (void)an.operating_point();
        const auto start = std::chrono::steady_clock::now();
        const core::stability_report rep = an.analyze_all_nodes();
        const auto stop = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(rep.nodes.data());
        std::printf("  %zu thread(s): %8.1f ms\n", threads,
                    std::chrono::duration<double, std::milli>(stop - start).count());
    }
    std::puts("");
}

void bm_ladder_ac(benchmark::State& state)
{
    spice::circuit c;
    circuits::build_rc_ladder(c, static_cast<std::size_t>(state.range(0)));
    const spice::dc_result op = spice::dc_operating_point(c);
    spice::ac_options opt;
    opt.solver = state.range(1) == 0 ? spice::solver_kind::dense : spice::solver_kind::sparse;
    for (auto _ : state) {
        const spice::ac_result res = spice::ac_sweep(c, {1e6}, op.solution, opt);
        benchmark::DoNotOptimize(res.solution.data());
    }
    state.SetLabel(state.range(1) == 0 ? "dense" : "sparse");
}
BENCHMARK(bm_ladder_ac)->Args({40, 0})->Args({40, 1})->Args({320, 0})->Args({320, 1});

} // namespace

int main(int argc, char** argv)
{
    print_ablation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
