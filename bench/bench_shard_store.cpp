// Crash-safe shard store costs: what the farm orchestrator's durability
// contract (one fwrite + fflush per record before the point is
// acknowledged) costs per append, how fast the line-by-line scanner
// recovers a shard stream, and the streaming merge vs the in-memory
// merge_shards() path on growing synthetic campaigns. The streaming
// merge keeps O(1) records resident, so its bytes/sec — not its memory —
// is the number to watch.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "farm/campaign.h"
#include "farm/executor.h"
#include "farm/shard_store.h"

namespace {

using namespace acstab;

/// Synthetic campaign with `points` grid cells; records carry a
/// realistic ~60-sample response so the bench moves report-shaped bytes.
[[nodiscard]] farm::campaign_spec synthetic_campaign(std::size_t points)
{
    farm::campaign_spec spec;
    spec.netlist = "bench_shard_store.sp";
    spec.node = "out";
    core::param_axis axis;
    axis.name = "cload";
    for (std::size_t i = 0; i < points; ++i)
        axis.values.push_back(1e-12 * static_cast<real>(i + 1));
    spec.grid.axes = {axis};
    return spec;
}

[[nodiscard]] farm::point_record synthetic_record(const farm::campaign_spec& spec,
                                                  std::size_t index)
{
    farm::point_record rec;
    rec.point = spec.grid.point(index);
    rec.index = index;
    rec.has_peak = true;
    rec.fn_hz = 1e6 + static_cast<real>(index);
    rec.peak = 3.5;
    rec.zeta = 0.3;
    rec.phase_margin_deg = 33.0;
    rec.overshoot_pct = 35.0;
    for (std::size_t k = 0; k < 60; ++k) {
        rec.freq_hz.push_back(1e3 * static_cast<real>(k + 1));
        rec.magnitude.push_back(1.0 / static_cast<real>(k + 1));
    }
    return rec;
}

void bm_shard_stream_append(benchmark::State& state)
{
    const farm::campaign_spec spec = synthetic_campaign(256);
    const farm::point_record rec = synthetic_record(spec, 0);
    const std::string path = "bench_shard_append.jsonl";
    std::size_t appended = 0;
    for (auto _ : state) {
        state.PauseTiming();
        std::remove(path.c_str());
        farm::shard_writer writer(path, spec, 0);
        state.ResumeTiming();
        for (std::size_t i = 0; i < 256; ++i)
            writer.append(rec);
        appended += 256;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(appended));
    std::remove(path.c_str());
}
BENCHMARK(bm_shard_stream_append)->Unit(benchmark::kMillisecond);

void bm_shard_stream_scan(benchmark::State& state)
{
    const std::size_t points = static_cast<std::size_t>(state.range(0));
    const farm::campaign_spec spec = synthetic_campaign(points);
    const std::string spec_bytes = farm::to_json(spec).dump();
    const std::string path = "bench_shard_scan.jsonl";
    std::remove(path.c_str());
    {
        farm::shard_writer writer(path, spec, 0);
        for (std::size_t i = 0; i < points; ++i)
            writer.append(synthetic_record(spec, i));
    }
    std::size_t scanned = 0;
    for (auto _ : state) {
        const farm::shard_stream_scan scan = farm::scan_shard_stream(path, spec_bytes);
        benchmark::DoNotOptimize(scan.records.data());
        scanned += scan.records.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(scanned));
    std::remove(path.c_str());
}
BENCHMARK(bm_shard_stream_scan)->Arg(256)->Arg(2048)->Unit(benchmark::kMillisecond);

void bm_streaming_merge(benchmark::State& state)
{
    const std::size_t points = static_cast<std::size_t>(state.range(0));
    const farm::campaign_spec spec = synthetic_campaign(points);
    const std::string path = "bench_merge_shard.jsonl";
    const std::string out = "bench_merge_report.json";
    std::remove(path.c_str());
    {
        farm::shard_writer writer(path, spec, 0);
        for (std::size_t i = 0; i < points; ++i)
            writer.append(synthetic_record(spec, i));
    }
    for (auto _ : state) {
        const farm::stream_merge_result merged
            = farm::merge_shard_streams(spec, {path}, {}, out);
        benchmark::DoNotOptimize(merged.points);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        static_cast<std::size_t>(state.iterations()) * points));
    std::remove(path.c_str());
    std::remove(out.c_str());
}
BENCHMARK(bm_streaming_merge)->Arg(256)->Arg(2048)->Unit(benchmark::kMillisecond);

void bm_in_memory_merge(benchmark::State& state)
{
    // The legacy whole-document path the streaming merge competes with.
    const std::size_t points = static_cast<std::size_t>(state.range(0));
    const farm::campaign_spec spec = synthetic_campaign(points);
    std::vector<farm::point_record> records;
    records.reserve(points);
    for (std::size_t i = 0; i < points; ++i)
        records.push_back(synthetic_record(spec, i));
    const farm::json_value doc = farm::shard_to_json(spec, 0, 1, records);
    for (auto _ : state) {
        const std::string report = farm::merge_shards(spec, {doc}).dump();
        benchmark::DoNotOptimize(report.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        static_cast<std::size_t>(state.iterations()) * points));
}
BENCHMARK(bm_in_memory_merge)->Arg(256)->Arg(2048)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
