// Fig. 3: open-loop gain/phase plot with ~20 deg phase margin — the
// paper's traditional Bode baseline (loop broken with an L/C servo).
// Prints both curves and the margins; benchmarks the AC sweep.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/bode.h"
#include "circuits/opamp.h"
#include "core/ascii_plot.h"
#include "numeric/interpolation.h"
#include "spice/circuit.h"
#include "spice/measure.h"
#include "spice/units.h"

namespace {

using namespace acstab;

void print_fig3()
{
    std::puts("==============================================================================");
    std::puts("Fig. 3 — open-loop gain/phase (paper: PM ~20 deg, 0 dB at ~2.4 MHz,");
    std::puts("          -180 deg at ~3.5 MHz; natural frequency must fall in between)");
    std::puts("==============================================================================");
    spice::circuit c;
    const circuits::opamp_nodes n = circuits::build_opamp_open_loop(c);
    const std::vector<real> freqs = numeric::log_space(1e2, 1e9, 300);
    const analysis::frequency_response fr
        = analysis::measure_response(c, "vstim", n.out, freqs);
    std::vector<cplx> loop(fr.h.size());
    for (std::size_t i = 0; i < loop.size(); ++i)
        loop[i] = -fr.h[i]; // V(out)/V(stim) = -A(s); buffer loop gain = A(s)

    const std::vector<real> gain_db = spice::db20(loop);
    const std::vector<real> phase = spice::phase_deg_unwrapped(loop);
    core::ascii_plot_options po;
    po.title = "loop gain magnitude [dB] vs frequency";
    po.height = 16;
    std::fputs(core::ascii_plot(freqs, gain_db, po).c_str(), stdout);
    po.title = "\nloop phase [deg] vs frequency";
    std::fputs(core::ascii_plot(freqs, phase, po).c_str(), stdout);

    const spice::bode_margins m = spice::margins(freqs, loop);
    std::printf("\n0 dB crossover : %s\n", spice::format_frequency(m.unity_freq_hz).c_str());
    std::printf("phase margin   : %.1f deg\n", m.phase_margin_deg);
    if (m.has_phase_crossing) {
        std::printf("-180 deg at    : %s\n",
                    spice::format_frequency(m.phase_cross_freq_hz).c_str());
        std::printf("gain margin    : %.1f dB\n", m.gain_margin_db);
    }
    std::puts("");
}

void bm_open_loop_ac_sweep(benchmark::State& state)
{
    spice::circuit c;
    const circuits::opamp_nodes n = circuits::build_opamp_open_loop(c);
    (void)n;
    const std::vector<real> freqs
        = numeric::log_space(1e2, 1e9, static_cast<std::size_t>(state.range(0)));
    const spice::dc_result op = spice::dc_operating_point(c);
    for (auto _ : state) {
        const spice::ac_result res = spice::ac_sweep(c, freqs, op.solution);
        benchmark::DoNotOptimize(res.solution.data());
    }
    state.counters["points"] = static_cast<double>(freqs.size());
}
BENCHMARK(bm_open_loop_ac_sweep)->Arg(100)->Arg(300)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv)
{
    print_fig3();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
