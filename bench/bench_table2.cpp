// Table 2: stability-plot peak values for all circuit nodes, sorted by
// loop natural frequency — the op-amp buffer with its zero-TC bias
// generator, exactly the paper's workload. Benchmarks compare the serial
// and threaded all-nodes sweeps.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "circuits/opamp.h"
#include "core/analyzer.h"
#include "core/report.h"
#include "spice/circuit.h"

namespace {

using namespace acstab;

core::stability_options sweep_options(std::size_t ppd = 50, std::size_t threads = 1)
{
    core::stability_options opt;
    opt.sweep.fstart = 1e3;
    opt.sweep.fstop = 1e9;
    opt.sweep.points_per_decade = ppd;
    opt.threads = threads;
    return opt;
}

void print_table2()
{
    std::puts("==============================================================================");
    std::puts("Table 2 — all-nodes stability report of the 2 MHz-class op-amp buffer");
    std::puts("          (with zero-TC bias generator; paper: main loop at 3.3 MHz plus");
    std::puts("           local bias loops at 36.3 / 47.9 / 51.3 MHz)");
    std::puts("==============================================================================");
    spice::circuit c;
    (void)circuits::build_opamp_buffer(c);
    core::stability_analyzer an(c, sweep_options());
    const core::stability_report rep = an.analyze_all_nodes();
    std::fputs(core::format_all_nodes_report(rep).c_str(), stdout);
    std::puts("");
}

void bm_all_nodes_sweep(benchmark::State& state)
{
    spice::circuit c;
    (void)circuits::build_opamp_buffer(c);
    core::stability_analyzer an(c,
                                sweep_options(static_cast<std::size_t>(state.range(0)),
                                              static_cast<std::size_t>(state.range(1))));
    (void)an.operating_point();
    for (auto _ : state) {
        const core::stability_report rep = an.analyze_all_nodes();
        benchmark::DoNotOptimize(rep.nodes.data());
    }
    state.counters["ppd"] = static_cast<double>(state.range(0));
    state.counters["threads"] = static_cast<double>(state.range(1));
}
BENCHMARK(bm_all_nodes_sweep)
    ->Args({30, 1})
    ->Args({30, 4})
    ->Args({50, 1})
    ->Args({50, 4})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

} // namespace

int main(int argc, char** argv)
{
    print_table2();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
