// A1 — grid-density ablation: how many points per decade does the
// stability plot need before eq. (1.4) holds to a given accuracy? Swept
// for several damping ratios on the analytic prototype (so the only error
// is discretization).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "core/stability_plot.h"
#include "numeric/rational.h"

namespace {

using namespace acstab;

core::stability_plot plot_at(real zeta, std::size_t ppd, bool direct)
{
    const auto t = numeric::rational::second_order_lowpass(zeta, to_omega(1e6));
    core::sweep_spec sweep;
    sweep.fstart = 1e3;
    sweep.fstop = 1e9;
    sweep.points_per_decade = ppd;
    const std::vector<real> freqs = sweep.frequencies();
    std::vector<real> mag(freqs.size());
    for (std::size_t i = 0; i < freqs.size(); ++i)
        mag[i] = t.magnitude(to_omega(freqs[i]));
    core::plot_options popt;
    popt.use_direct_formula = direct;
    return core::compute_stability_plot(freqs, mag, popt);
}

void print_ablation()
{
    std::puts("==============================================================================");
    std::puts("A1 — points-per-decade vs peak accuracy (analytic prototype, fn = 1 MHz)");
    std::puts("     error = |measured peak - (-1/zeta^2)| / (1/zeta^2) in percent");
    std::puts("==============================================================================");
    std::puts("zeta   exact peak |  10 ppd    20 ppd    40 ppd    80 ppd   160 ppd");
    std::puts("------------------------------------------------------------------------------");
    for (const real zeta : {0.1, 0.2, 0.3, 0.5}) {
        std::printf("%4.1f   %10.1f |", zeta, -1.0 / (zeta * zeta));
        for (const std::size_t ppd : {10u, 20u, 40u, 80u, 160u}) {
            const core::stability_plot plot = plot_at(zeta, ppd, false);
            const core::stability_peak* peak = plot.dominant_pole();
            if (peak == nullptr) {
                std::printf("%9s", "n/a");
                continue;
            }
            const real exact = -1.0 / (zeta * zeta);
            std::printf("%8.2f%%", 100.0 * std::fabs(peak->value - exact) / std::fabs(exact));
        }
        std::puts("");
    }
    std::puts("\nfrequency localization error (percent of fn), zeta = 0.2:");
    for (const std::size_t ppd : {10u, 20u, 40u, 80u, 160u}) {
        const core::stability_plot plot = plot_at(0.2, ppd, false);
        const core::stability_peak* peak = plot.dominant_pole();
        if (peak != nullptr)
            std::printf("  %3zu ppd: %6.3f%%\n", ppd,
                        100.0 * std::fabs(peak->freq_hz - 1e6) / 1e6);
    }
    std::puts("");
}

void bm_plot_vs_ppd(benchmark::State& state)
{
    const std::size_t ppd = static_cast<std::size_t>(state.range(0));
    const auto t = numeric::rational::second_order_lowpass(0.2, to_omega(1e6));
    core::sweep_spec sweep;
    sweep.points_per_decade = ppd;
    const std::vector<real> freqs = sweep.frequencies();
    std::vector<real> mag(freqs.size());
    for (std::size_t i = 0; i < freqs.size(); ++i)
        mag[i] = t.magnitude(to_omega(freqs[i]));
    for (auto _ : state) {
        const auto plot = core::compute_stability_plot(freqs, mag);
        benchmark::DoNotOptimize(plot.p.data());
    }
    state.counters["ppd"] = static_cast<double>(ppd);
}
BENCHMARK(bm_plot_vs_ppd)->Arg(10)->Arg(40)->Arg(160);

} // namespace

int main(int argc, char** argv)
{
    print_ablation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
