// Table 1: key performance characteristics of a second-order system.
//
// Prints the paper's table twice: from the closed-form theory, and as
// *measured* by the full pipeline — a parallel RLC tank simulated at each
// damping ratio, probed with the AC-current stimulus, peak read off the
// stability plot. The benchmark times the plot computation kernel.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "circuits/rlc.h"
#include "core/analyzer.h"
#include "core/second_order.h"
#include "core/stability_plot.h"
#include "numeric/rational.h"
#include "spice/circuit.h"

namespace {

using namespace acstab;

void print_table1()
{
    std::puts("==============================================================================");
    std::puts("Table 1 — second-order dominant root characteristics (paper, DATE'05)");
    std::puts("==============================================================================");
    std::puts("                 analytic                              measured (simulated");
    std::puts("                                                       RLC tank @ 1 MHz)");
    std::puts("zeta  overshoot%  PM[deg]  max-mag  perf-index   |   peak        fn[MHz]");
    std::puts("------------------------------------------------------------------------------");
    for (const auto& row : core::table1()) {
        char pm[16];
        char mp[16];
        char pi[16];
        if (row.zeta > 0.705)
            std::snprintf(pm, sizeof pm, "%7s", "-");
        else
            std::snprintf(pm, sizeof pm, "%7.0f", row.phase_margin_deg);
        if (row.zeta >= 0.705 || !std::isfinite(row.max_magnitude))
            std::snprintf(mp, sizeof mp, "%7s", std::isinf(row.max_magnitude) ? "inf" : "-");
        else
            std::snprintf(mp, sizeof mp, "%7.2f", row.max_magnitude);
        if (std::isinf(row.perf_index))
            std::snprintf(pi, sizeof pi, "%10s", "-inf");
        else
            std::snprintf(pi, sizeof pi, "%10.1f", row.perf_index);

        char measured[40] = "      (no peak: overdamped)";
        if (row.zeta > 0.05 && row.zeta < 0.95) {
            spice::circuit c;
            circuits::add_parallel_rlc_tank(c, "tank", row.zeta, 1e6);
            core::stability_options opt;
            opt.sweep.fstart = 1e4;
            opt.sweep.fstop = 1e8;
            opt.sweep.points_per_decade = 80;
            core::stability_analyzer an(c, opt);
            const core::node_stability ns = an.analyze_node("tank");
            if (ns.has_peak)
                std::snprintf(measured, sizeof measured, "%10.2f   %8.4f",
                              ns.dominant.value, ns.dominant.freq_hz / 1e6);
        }
        std::printf("%4.1f  %9.0f  %s  %s  %s   |%s\n", row.zeta, row.overshoot_pct, pm, mp,
                    pi, measured);
    }
    std::puts("------------------------------------------------------------------------------");
    std::puts("paper rows for reference: zeta=0.2 -> 53%, 20 deg, 2.6, -25;"
              " zeta=0.5 -> 16%, 50 deg, 1.15, -4.0\n");
}

void bm_stability_plot_kernel(benchmark::State& state)
{
    const auto t = numeric::rational::second_order_lowpass(0.2, to_omega(1e6));
    core::sweep_spec sweep;
    sweep.fstart = 1e3;
    sweep.fstop = 1e9;
    sweep.points_per_decade = static_cast<std::size_t>(state.range(0));
    const std::vector<real> freqs = sweep.frequencies();
    std::vector<real> mag(freqs.size());
    for (std::size_t i = 0; i < freqs.size(); ++i)
        mag[i] = t.magnitude(to_omega(freqs[i]));
    for (auto _ : state) {
        const core::stability_plot plot = core::compute_stability_plot(freqs, mag);
        benchmark::DoNotOptimize(plot.peaks.data());
    }
    state.counters["points"] = static_cast<double>(freqs.size());
}
BENCHMARK(bm_stability_plot_kernel)->Arg(20)->Arg(60)->Arg(200);

void bm_tank_single_node_analysis(benchmark::State& state)
{
    spice::circuit c;
    circuits::add_parallel_rlc_tank(c, "tank", 0.2, 1e6);
    core::stability_options opt;
    opt.sweep.points_per_decade = static_cast<std::size_t>(state.range(0));
    core::stability_analyzer an(c, opt);
    (void)an.operating_point();
    for (auto _ : state) {
        const core::node_stability ns = an.analyze_node("tank");
        benchmark::DoNotOptimize(ns.dominant.value);
    }
}
BENCHMARK(bm_tank_single_node_analysis)->Arg(20)->Arg(60)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv)
{
    print_table1();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
