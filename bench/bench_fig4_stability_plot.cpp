// Fig. 4: the stability plot at the buffer output — the paper's headline
// figure: a negative peak of magnitude ~29 at ~3.2 MHz whose value gives
// the loop's damping ratio and phase margin without breaking the loop.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "circuits/opamp.h"
#include "core/analyzer.h"
#include "core/ascii_plot.h"
#include "core/report.h"
#include "spice/circuit.h"
#include "spice/units.h"

namespace {

using namespace acstab;

core::stability_options sweep_options(std::size_t ppd = 60)
{
    core::stability_options opt;
    opt.sweep.fstart = 1e3;
    opt.sweep.fstop = 1e9;
    opt.sweep.points_per_decade = ppd;
    return opt;
}

void print_fig4()
{
    std::puts("==============================================================================");
    std::puts("Fig. 4 — stability plot at the output node (paper: peak -28.9 at 3.16 MHz,");
    std::puts("          i.e. zeta ~0.19, phase margin slightly below 20 deg)");
    std::puts("==============================================================================");
    spice::circuit c;
    const circuits::opamp_nodes n = circuits::build_opamp_buffer(c);
    core::stability_analyzer an(c, sweep_options());
    const core::node_stability ns = an.analyze_node(n.out);

    core::ascii_plot_options po;
    po.title = "P(f) at node 'out'";
    std::fputs(core::ascii_plot(ns.plot.freq_hz, ns.plot.p, po).c_str(), stdout);
    std::puts("");
    std::fputs(core::format_node_summary(ns).c_str(), stdout);
    std::puts("");
}

void bm_single_node_stability(benchmark::State& state)
{
    spice::circuit c;
    const circuits::opamp_nodes n = circuits::build_opamp_buffer(c);
    core::stability_analyzer an(c, sweep_options(static_cast<std::size_t>(state.range(0))));
    (void)an.operating_point();
    for (auto _ : state) {
        const core::node_stability ns = an.analyze_node(n.out);
        benchmark::DoNotOptimize(ns.dominant.value);
    }
    state.counters["ppd"] = static_cast<double>(state.range(0));
}
BENCHMARK(bm_single_node_stability)->Arg(30)->Arg(60)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv)
{
    print_fig4();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
