// Fig. 5: the zero-TC bias circuit annotated with per-node stability
// values — the local ~50 MHz loop the tool uncovers, before and after the
// compensation fix the paper applies.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/pole_zero.h"
#include "circuits/bias.h"
#include "core/analyzer.h"
#include "core/report.h"
#include "spice/circuit.h"
#include "spice/units.h"

namespace {

using namespace acstab;

core::stability_options sweep_options()
{
    core::stability_options opt;
    opt.sweep.fstart = 1e4;
    opt.sweep.fstop = 1e10;
    opt.sweep.points_per_decade = 50;
    return opt;
}

void run_variant(bool compensated)
{
    spice::circuit c;
    circuits::bias_params bp;
    bp.compensated = compensated;
    circuits::build_standalone_bias(c, bp);
    core::stability_analyzer an(c, sweep_options());
    const core::stability_report rep = an.analyze_all_nodes();

    std::printf("---- %s ----\n",
                compensated ? "with compensation (paper's fix)" : "uncompensated");
    std::fputs(core::format_all_nodes_report(rep).c_str(), stdout);
    std::puts("\nannotated circuit:");
    std::fputs(core::annotate_circuit(c, rep).c_str(), stdout);

    analysis::pole dom;
    if (analysis::dominant_complex_pole(analysis::circuit_poles(c, an.operating_point()), dom))
        std::printf("\npencil cross-check: dominant complex pair at %s, zeta = %.3f\n\n",
                    spice::format_frequency(dom.freq_hz).c_str(), dom.zeta);
}

void print_fig5()
{
    std::puts("==============================================================================");
    std::puts("Fig. 5 — zero-TC bias circuit annotated with stability values (paper: local");
    std::puts("          loop near 50 MHz, PM < 50 deg, fixed by added compensation)");
    std::puts("==============================================================================");
    run_variant(false);
    run_variant(true);
}

void bm_bias_all_nodes(benchmark::State& state)
{
    spice::circuit c;
    circuits::build_standalone_bias(c);
    core::stability_analyzer an(c, sweep_options());
    (void)an.operating_point();
    for (auto _ : state) {
        const core::stability_report rep = an.analyze_all_nodes();
        benchmark::DoNotOptimize(rep.nodes.data());
    }
}
BENCHMARK(bm_bias_all_nodes)->Unit(benchmark::kMillisecond)->Iterations(3);

} // namespace

int main(int argc, char** argv)
{
    print_fig5();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
