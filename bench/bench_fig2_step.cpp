// Fig. 2: small-signal step response of the buffer showing ~55 % overshoot
// (the paper's traditional "node pulsing" baseline). Prints the waveform
// as an ASCII chart plus the measured metrics; benchmarks the transient
// engine at two step densities.
//
// Also runs the transient solver-path ablation: the seed one-shot path
// (fresh symbolic analysis + factorization per Newton iteration) against
// the shared-symbolic path (factor the pattern once, numeric-only
// refactorization per solve) on the buffer and on a >= 2k-node generated
// RC mesh, checking the waveforms agree to solver rounding. Emits one
// machine-readable ACSTAB_BENCH_JSON line for the CI speed guard.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/transient_overshoot.h"
#include "circuits/opamp.h"
#include "core/ascii_plot.h"
#include "gen/netlist_gen.h"
#include "spice/circuit.h"
#include "spice/devices/sources.h"
#include "spice/parser/netlist_parser.h"
#include "spice/tran_analysis.h"
#include "spice/units.h"

namespace {

using namespace acstab;

void print_fig2()
{
    std::puts("==============================================================================");
    std::puts("Fig. 2 — buffer step response (paper: ~55 % overshoot, close to the 53 %");
    std::puts("          predicted from the stability plot)");
    std::puts("==============================================================================");
    spice::circuit c;
    circuits::opamp_params p;
    p.step_volts = 0.01;
    const circuits::opamp_nodes n = circuits::build_opamp_buffer(c, p);
    analysis::step_options so;
    so.tstop = 6e-6;
    const analysis::step_response_metrics m = analysis::measure_step_response(c, n.out, so);

    // Render the interesting window around the step.
    std::vector<real> t;
    std::vector<real> v;
    const std::vector<real> full = spice::node_waveform(c, m.raw, n.out);
    for (std::size_t i = 0; i < m.raw.time.size(); ++i) {
        if (m.raw.time[i] >= 0.8e-6 && m.raw.time[i] <= 4e-6) {
            t.push_back(m.raw.time[i]);
            v.push_back(full[i]);
        }
    }
    core::ascii_plot_options po;
    po.log_x = false;
    po.title = "V(out) vs time [0.8us .. 4us]";
    std::fputs(core::ascii_plot(t, v, po).c_str(), stdout);

    std::printf("\novershoot        : %.1f %%\n", m.overshoot_pct);
    std::printf("ringing frequency: %s\n", spice::format_frequency(m.ringing_freq_hz).c_str());
    std::printf("settling (2%%)    : %.3g s\n", m.settling_time_s);
    std::printf("final value      : %.4f V\n\n", m.final_value);
}

// --- transient solver-path ablation ----------------------------------------

struct tran_row {
    std::string kind;  ///< "buffer" | "rcmesh"
    std::size_t unknowns = 0;
    std::string mode;  ///< "oneshot" | "shared"
    double ms = 0.0;
    std::size_t solves = 0;          ///< shared-path Newton solves (0 on oneshot)
    std::size_t symbolic_builds = 0; ///< shared-path symbolic analyses
    double max_rel_err = 0.0;        ///< vs the oneshot waveform (scale-relative)
};

std::vector<tran_row>& tran_rows()
{
    static std::vector<tran_row> r;
    return r;
}

[[nodiscard]] double time_tran_ms(spice::circuit& c, const spice::tran_options& opt,
                                  spice::tran_result& out, int repeats)
{
    double best = 0.0;
    for (int rep = 0; rep < repeats; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        out = spice::transient(c, opt);
        const auto t1 = std::chrono::steady_clock::now();
        const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (rep == 0 || ms < best)
            best = ms;
    }
    return best;
}

[[nodiscard]] double waveform_rel_err(const spice::tran_result& a,
                                      const spice::tran_result& b)
{
    if (a.time.size() != b.time.size())
        return 1.0;
    double scale = 1.0;
    for (const std::vector<real>& row : a.solution)
        for (const real v : row)
            scale = std::max(scale, std::fabs(static_cast<double>(v)));
    double worst = 0.0;
    for (std::size_t s = 0; s < a.time.size(); ++s)
        for (std::size_t i = 0; i < a.solution[s].size(); ++i)
            worst = std::max(worst,
                             std::fabs(static_cast<double>(a.solution[s][i]
                                                           - b.solution[s][i])));
    return worst / scale;
}

void ablate_circuit(const std::string& kind, spice::circuit& c, real tstop, real dt,
                    int repeats)
{
    spice::tran_options oneshot;
    oneshot.tstop = tstop;
    oneshot.dt = dt;
    oneshot.shared_solver = false;
    spice::tran_options shared = oneshot;
    shared.shared_solver = true;

    spice::tran_result res_oneshot;
    spice::tran_result res_shared;
    const double ms_oneshot = time_tran_ms(c, oneshot, res_oneshot, repeats);
    const double ms_shared = time_tran_ms(c, shared, res_shared, repeats);
    const double err = waveform_rel_err(res_oneshot, res_shared);
    const std::size_t unknowns
        = res_shared.solution.empty() ? 0 : res_shared.solution.front().size();

    tran_rows().push_back({kind, unknowns, "oneshot", ms_oneshot, 0, 0, 0.0});
    tran_rows().push_back({kind, unknowns, "shared", ms_shared,
                           res_shared.solver.solves, res_shared.solver.symbolic_builds,
                           err});
    std::printf("%-8s n=%5zu  oneshot %9.2f ms   shared %9.2f ms   %5.2fx   "
                "max_rel_err %.3g\n",
                kind.c_str(), unknowns, ms_oneshot, ms_shared,
                ms_oneshot / std::max(ms_shared, 1e-9), err);
}

void run_tran_ablation(bool quick)
{
    std::puts("==============================================================================");
    std::puts("Transient solver-path ablation: one-shot factorization per Newton iteration");
    std::puts("vs shared symbolic + numeric-only refactorization (same Newton iteration,");
    std::puts("waveforms must agree to solver rounding)");
    std::puts("==============================================================================");
    {
        spice::circuit c;
        circuits::opamp_params p;
        p.step_volts = 0.01;
        (void)circuits::build_opamp_buffer(c, p);
        ablate_circuit("buffer", c, 6e-6, 6e-6 / 1000.0, quick ? 1 : 3);
    }
    {
        // >= 2k-unknown RC mesh; the tool's vin is re-pointed at a step so
        // the run has real dynamics instead of a settled DC rail.
        gen::gen_options gopt;
        gopt.size = 2048;
        spice::parsed_netlist net = spice::parse_netlist(gen::rcmesh_netlist(gopt));
        auto* vin = dynamic_cast<spice::vsource*>(net.ckt.find_device("vin"));
        if (vin != nullptr)
            vin->set_spec(spice::waveform_spec::make_step(0.0, 1.0, 0.0, 1e-8));
        ablate_circuit("rcmesh", net.ckt, 2e-5, 1e-7, quick ? 1 : 2);
    }

    std::fputs("ACSTAB_BENCH_JSON [", stdout);
    for (std::size_t i = 0; i < tran_rows().size(); ++i) {
        const tran_row& r = tran_rows()[i];
        std::printf("%s{\"bench\":\"tran_solver\",\"kind\":\"%s\",\"unknowns\":%zu,"
                    "\"mode\":\"%s\",\"ms\":%.4f,\"solves\":%zu,"
                    "\"symbolic_builds\":%zu,\"max_rel_err\":%.3g}",
                    i == 0 ? "" : ",", r.kind.c_str(), r.unknowns, r.mode.c_str(), r.ms,
                    r.solves, r.symbolic_builds, r.max_rel_err);
    }
    std::puts("]");
}

void bm_buffer_transient(benchmark::State& state)
{
    spice::circuit c;
    circuits::opamp_params p;
    p.step_volts = 0.01;
    const circuits::opamp_nodes n = circuits::build_opamp_buffer(c, p);
    (void)n;
    spice::tran_options opt;
    opt.tstop = 6e-6;
    opt.dt = opt.tstop / static_cast<real>(state.range(0));
    for (auto _ : state) {
        const spice::tran_result res = spice::transient(c, opt);
        benchmark::DoNotOptimize(res.solution.data());
    }
    state.counters["steps"] = static_cast<double>(state.range(0));
}
BENCHMARK(bm_buffer_transient)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

} // namespace

int main(int argc, char** argv)
{
    // --quick is ours (single timing pass for CI), not google-benchmark's:
    // strip it before Initialize.
    bool quick = false;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else
            argv[out++] = argv[i];
    }
    argc = out;

    print_fig2();
    run_tran_ablation(quick);
    if (quick)
        return 0;
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
