// Fig. 2: small-signal step response of the buffer showing ~55 % overshoot
// (the paper's traditional "node pulsing" baseline). Prints the waveform
// as an ASCII chart plus the measured metrics; benchmarks the transient
// engine at two step densities.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/transient_overshoot.h"
#include "circuits/opamp.h"
#include "core/ascii_plot.h"
#include "spice/circuit.h"
#include "spice/units.h"

namespace {

using namespace acstab;

void print_fig2()
{
    std::puts("==============================================================================");
    std::puts("Fig. 2 — buffer step response (paper: ~55 % overshoot, close to the 53 %");
    std::puts("          predicted from the stability plot)");
    std::puts("==============================================================================");
    spice::circuit c;
    circuits::opamp_params p;
    p.step_volts = 0.01;
    const circuits::opamp_nodes n = circuits::build_opamp_buffer(c, p);
    analysis::step_options so;
    so.tstop = 6e-6;
    const analysis::step_response_metrics m = analysis::measure_step_response(c, n.out, so);

    // Render the interesting window around the step.
    std::vector<real> t;
    std::vector<real> v;
    const std::vector<real> full = spice::node_waveform(c, m.raw, n.out);
    for (std::size_t i = 0; i < m.raw.time.size(); ++i) {
        if (m.raw.time[i] >= 0.8e-6 && m.raw.time[i] <= 4e-6) {
            t.push_back(m.raw.time[i]);
            v.push_back(full[i]);
        }
    }
    core::ascii_plot_options po;
    po.log_x = false;
    po.title = "V(out) vs time [0.8us .. 4us]";
    std::fputs(core::ascii_plot(t, v, po).c_str(), stdout);

    std::printf("\novershoot        : %.1f %%\n", m.overshoot_pct);
    std::printf("ringing frequency: %s\n", spice::format_frequency(m.ringing_freq_hz).c_str());
    std::printf("settling (2%%)    : %.3g s\n", m.settling_time_s);
    std::printf("final value      : %.4f V\n\n", m.final_value);
}

void bm_buffer_transient(benchmark::State& state)
{
    spice::circuit c;
    circuits::opamp_params p;
    p.step_volts = 0.01;
    const circuits::opamp_nodes n = circuits::build_opamp_buffer(c, p);
    (void)n;
    spice::tran_options opt;
    opt.tstop = 6e-6;
    opt.dt = opt.tstop / static_cast<real>(state.range(0));
    for (auto _ : state) {
        const spice::tran_result res = spice::transient(c, opt);
        benchmark::DoNotOptimize(res.solution.data());
    }
    state.counters["steps"] = static_cast<double>(state.range(0));
}
BENCHMARK(bm_buffer_transient)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

} // namespace

int main(int argc, char** argv)
{
    print_fig2();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
