// Fig. 1: the op-amp circuit itself. Prints the netlist-style inventory
// and the DC operating point — our text substitute for the schematic —
// and benchmarks the DC solve that every analysis builds on.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "circuits/opamp.h"
#include "spice/circuit.h"
#include "spice/dc_analysis.h"
#include "spice/devices/mosfet.h"
#include "spice/units.h"

namespace {

using namespace acstab;

void print_fig1()
{
    std::puts("==============================================================================");
    std::puts("Fig. 1 — 2 MHz-class two-stage op-amp connected as a buffer");
    std::puts("==============================================================================");
    spice::circuit c;
    const circuits::opamp_nodes n = circuits::build_opamp_buffer(c);

    std::printf("devices: %zu, nodes: %zu\n\n", c.devices().size(), c.node_count());
    std::puts("device            type        nodes");
    std::puts("------------------------------------------------------------------------------");
    for (const auto& dev : c.devices()) {
        std::printf("%-18s%-12s", dev->name().c_str(), std::string(dev->type_name()).c_str());
        for (const spice::node_id id : dev->nodes())
            std::printf("%s ", c.node_name(id).c_str());
        std::puts("");
    }

    const spice::dc_result op = spice::dc_operating_point(c);
    std::puts("\nDC operating point:");
    for (std::size_t i = 0; i < c.node_count(); ++i)
        std::printf("  V(%-8s) = %9.5f V\n",
                    c.node_name(static_cast<spice::node_id>(i)).c_str(), op.solution[i]);

    std::puts("\nkey small-signal parameters:");
    for (const char* name : {"m1", "m2", "m6"}) {
        const auto* m = dynamic_cast<const spice::mosfet*>(c.find_device(name));
        if (m == nullptr)
            continue;
        const auto ss = m->small_signal(op.solution);
        std::printf("  %-3s: id = %9.3g A  gm = %9.3g S  region = %s\n", name, ss.id, ss.gm,
                    ss.region == 2 ? "sat" : (ss.region == 1 ? "triode" : "cutoff"));
    }
    std::printf("\nbuffer output: V(%s) = %.4f V (target 2.5 V)\n\n", n.out.c_str(),
                spice::node_voltage(c, op.solution, n.out));
}

void bm_opamp_dc_operating_point(benchmark::State& state)
{
    spice::circuit c;
    (void)circuits::build_opamp_buffer(c);
    for (auto _ : state) {
        const spice::dc_result op = spice::dc_operating_point(c);
        benchmark::DoNotOptimize(op.solution.data());
    }
}
BENCHMARK(bm_opamp_dc_operating_point)->Unit(benchmark::kMillisecond);

void bm_opamp_dc_dense_vs_sparse(benchmark::State& state)
{
    spice::circuit c;
    (void)circuits::build_opamp_buffer(c);
    spice::dc_options opt;
    opt.solver = state.range(0) == 0 ? spice::solver_kind::dense : spice::solver_kind::sparse;
    for (auto _ : state) {
        const spice::dc_result op = spice::dc_operating_point(c, opt);
        benchmark::DoNotOptimize(op.solution.data());
    }
    state.SetLabel(state.range(0) == 0 ? "dense" : "sparse");
}
BENCHMARK(bm_opamp_dc_dense_vs_sparse)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv)
{
    print_fig1();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
