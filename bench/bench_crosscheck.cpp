// X1 — the paper's section-3 consistency claim, all methods side by side:
//   * stability plot (no loop breaking)        -> fn, zeta, PM, overshoot
//   * open-loop Bode (loop broken)             -> PM, crossover, f(-180)
//   * transient step (black box)               -> overshoot, ringing freq
//   * (G,C) pencil eigenvalues (ground truth)  -> fn, zeta
// The paper asserts: fn lies between the 0 dB crossover and the -180 deg
// frequency, and the index-predicted overshoot matches the transient.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/bode.h"
#include "analysis/pole_zero.h"
#include "analysis/transient_overshoot.h"
#include "circuits/opamp.h"
#include "core/analyzer.h"
#include "numeric/interpolation.h"
#include "spice/circuit.h"
#include "spice/units.h"

namespace {

using namespace acstab;

void print_crosscheck()
{
    std::puts("==============================================================================");
    std::puts("X1 — method cross-check on the op-amp buffer (paper section 3)");
    std::puts("==============================================================================");

    // Stability plot.
    real fn = 0.0;
    real pm_est = 0.0;
    real os_est = 0.0;
    real zeta_est = 0.0;
    {
        spice::circuit c;
        const circuits::opamp_nodes n = circuits::build_opamp_buffer(c);
        core::stability_options opt;
        opt.sweep.fstart = 1e3;
        opt.sweep.fstop = 1e9;
        opt.sweep.points_per_decade = 60;
        core::stability_analyzer an(c, opt);
        const core::node_stability ns = an.analyze_node(n.out);
        fn = ns.dominant.freq_hz;
        pm_est = ns.phase_margin_est_deg;
        os_est = ns.overshoot_est_pct;
        zeta_est = ns.zeta;
    }

    // Bode.
    spice::bode_margins bode;
    {
        spice::circuit c;
        const circuits::opamp_nodes n = circuits::build_opamp_open_loop(c);
        const std::vector<real> freqs = numeric::log_space(1e2, 1e9, 300);
        const analysis::frequency_response fr
            = analysis::measure_response(c, "vstim", n.out, freqs);
        std::vector<cplx> loop(fr.h.size());
        for (std::size_t i = 0; i < loop.size(); ++i)
            loop[i] = -fr.h[i];
        bode = spice::margins(freqs, loop);
    }

    // Transient.
    real os_meas = 0.0;
    real fring = 0.0;
    {
        spice::circuit c;
        circuits::opamp_params p;
        p.step_volts = 0.01;
        const circuits::opamp_nodes n = circuits::build_opamp_buffer(c, p);
        analysis::step_options so;
        so.tstop = 6e-6;
        const auto m = analysis::measure_step_response(c, n.out, so);
        os_meas = m.overshoot_pct;
        fring = m.ringing_freq_hz;
    }

    // Pencil ground truth.
    analysis::pole dom{};
    {
        spice::circuit c;
        (void)circuits::build_opamp_buffer(c);
        core::stability_analyzer an(c);
        (void)analysis::dominant_complex_pole(
            analysis::circuit_poles(c, an.operating_point()), dom);
    }

    std::puts("method               fn / f_char        PM [deg]   overshoot [%]");
    std::puts("------------------------------------------------------------------------------");
    std::printf("stability plot       %-18s %8.1f   %10.1f\n",
                spice::format_frequency(fn).c_str(), pm_est, os_est);
    std::printf("open-loop Bode       %-18s %8.1f   %10s\n",
                spice::format_frequency(bode.unity_freq_hz).c_str(), bode.phase_margin_deg,
                "-");
    std::printf("transient step       %-18s %8s   %10.1f\n",
                spice::format_frequency(fring).c_str(), "-", os_meas);
    std::printf("(G,C) pencil         %-18s %8.1f   %10s\n",
                spice::format_frequency(dom.freq_hz).c_str(), 100.0 * dom.zeta, "-");
    std::puts("------------------------------------------------------------------------------");
    std::printf("consistency: crossover %s  <  fn %s  <  f(-180) %s : %s\n",
                spice::format_frequency(bode.unity_freq_hz).c_str(),
                spice::format_frequency(fn).c_str(),
                spice::format_frequency(bode.phase_cross_freq_hz).c_str(),
                (bode.unity_freq_hz < fn && fn < bode.phase_cross_freq_hz) ? "PASS" : "FAIL");
    std::printf("overshoot prediction: %.1f %% predicted vs %.1f %% measured (|err| = %.1f)\n",
                os_est, os_meas, os_est > os_meas ? os_est - os_meas : os_meas - os_est);
    std::printf("zeta: %.3f (stability plot) vs %.3f (pencil)\n\n", zeta_est, dom.zeta);
}

void bm_full_crosscheck(benchmark::State& state)
{
    for (auto _ : state) {
        spice::circuit c;
        const circuits::opamp_nodes n = circuits::build_opamp_buffer(c);
        core::stability_options opt;
        opt.sweep.points_per_decade = 30;
        core::stability_analyzer an(c, opt);
        const core::node_stability ns = an.analyze_node(n.out);
        benchmark::DoNotOptimize(ns.zeta);
    }
}
BENCHMARK(bm_full_crosscheck)->Unit(benchmark::kMillisecond)->Iterations(3);

} // namespace

int main(int argc, char** argv)
{
    print_crosscheck();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
