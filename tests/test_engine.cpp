// The unified sweep engine must reproduce the direct re-stamp-per-
// frequency path to tight tolerance, serial and threaded, on every
// analysis that now routes through it.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <complex>
#include <set>

#include "analysis/loop_gain.h"
#include "circuits/opamp.h"
#include "circuits/rlc.h"
#include "common/error.h"
#include "core/analyzer.h"
#include "core/sweeps.h"
#include "engine/linearized_snapshot.h"
#include "engine/reference_sweep.h"
#include "engine/sweep_engine.h"
#include "engine/thread_pool.h"
#include "numeric/interpolation.h"
#include "numeric/sparse_lu.h"
#include "spice/ac_analysis.h"
#include "spice/dc_analysis.h"
#include "spice/devices/passive.h"
#include "spice/devices/sources.h"

namespace {

using namespace acstab;

/// Largest mismatch between two full AC solutions, measured per frequency
/// relative to the infinity norm of the solution vector (per-entry
/// relative error is meaningless for entries that are tiny by
/// cancellation).
real max_rel_error(const spice::ac_result& a, const spice::ac_result& b)
{
    EXPECT_EQ(a.solution.size(), b.solution.size());
    real worst = 0.0;
    for (std::size_t f = 0; f < a.solution.size(); ++f) {
        EXPECT_EQ(a.solution[f].size(), b.solution[f].size());
        real norm = 1e-30;
        for (const cplx& v : a.solution[f])
            norm = std::max(norm, std::abs(v));
        for (std::size_t i = 0; i < a.solution[f].size(); ++i)
            worst = std::max(worst, std::abs(a.solution[f][i] - b.solution[f][i]) / norm);
    }
    return worst;
}

spice::circuit make_rlc_circuit()
{
    spice::circuit c;
    const spice::node_id in = c.node("in");
    const spice::node_id m = c.node("m");
    const spice::node_id out = c.node("out");
    c.add<spice::vsource>("vin", in, spice::ground_node, spice::waveform_spec::make_ac(0.0, 1.0));
    c.add<spice::resistor>("r1", in, m, 50.0);
    c.add<spice::inductor>("l1", m, out, 1e-6);
    c.add<spice::capacitor>("c1", out, spice::ground_node, 1e-9);
    return c;
}

TEST(engine_equivalence, ac_sweep_rlc_matches_direct_path)
{
    spice::circuit c = make_rlc_circuit();
    const spice::dc_result op = spice::dc_operating_point(c);
    const std::vector<real> freqs = numeric::log_space(1e3, 1e9, 240);

    const spice::ac_result direct = engine::reference_ac_sweep(c, freqs, op.solution);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        spice::ac_options opt;
        opt.threads = threads;
        const spice::ac_result via_engine = spice::ac_sweep(c, freqs, op.solution, opt);
        EXPECT_LT(max_rel_error(direct, via_engine), 1e-9) << threads << " threads";
    }
}

TEST(engine_equivalence, ac_sweep_opamp_matches_direct_path)
{
    spice::circuit c;
    (void)circuits::build_opamp_buffer(c);
    const spice::dc_result op = spice::dc_operating_point(c);
    const std::vector<real> freqs = numeric::log_space(1e3, 1e9, 180);

    const spice::ac_result direct = engine::reference_ac_sweep(c, freqs, op.solution);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        spice::ac_options opt;
        opt.threads = threads;
        const spice::ac_result via_engine = spice::ac_sweep(c, freqs, op.solution, opt);
        EXPECT_LT(max_rel_error(direct, via_engine), 1e-7) << threads << " threads";
    }
}

TEST(engine_equivalence, dense_solver_path_matches_sparse)
{
    spice::circuit c = make_rlc_circuit();
    const spice::dc_result op = spice::dc_operating_point(c);
    const std::vector<real> freqs = numeric::log_space(1e4, 1e8, 40);

    spice::ac_options dense;
    dense.solver = spice::solver_kind::dense;
    const spice::ac_result a = spice::ac_sweep(c, freqs, op.solution, dense);
    const spice::ac_result b = spice::ac_sweep(c, freqs, op.solution);
    EXPECT_LT(max_rel_error(a, b), 1e-9);
}

// The historical algorithm: two full AC runs through probe manipulation
// (voltage injection via the probe's own stimulus, then a temporary
// current injector). The engine's one-pass two-RHS result must match.
TEST(engine_equivalence, loop_gain_matches_two_run_reference)
{
    spice::circuit c;
    const auto nodes = circuits::build_two_pole_loop(c, {});
    const std::vector<real> freqs = numeric::log_space(1e2, 1e8, 120);

    auto* probe = dynamic_cast<spice::vsource*>(c.find_device(nodes.probe));
    ASSERT_NE(probe, nullptr);
    c.finalize();
    const spice::node_id node_x = probe->nodes()[0];
    const spice::node_id node_y = probe->nodes()[1];
    const spice::dc_result op = spice::dc_operating_point(c);

    spice::ac_options ac;
    ac.exclusive_source = probe;
    const spice::waveform_spec saved = probe->spec();
    probe->set_spec(spice::waveform_spec::make_ac(0.0, 1.0));
    const spice::ac_result run_v = engine::reference_ac_sweep(c, freqs, op.solution, ac);
    probe->set_spec(saved);

    auto& inj = c.add<spice::isource>("iinj", spice::ground_node, node_y,
                                      spice::waveform_spec::make_ac(0.0, 1.0));
    spice::ac_options ac_i;
    ac_i.exclusive_source = &inj;
    const spice::ac_result run_i = engine::reference_ac_sweep(c, freqs, op.solution, ac_i);
    c.remove_device("iinj");

    const std::size_t branch = static_cast<std::size_t>(probe->branch());
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        analysis::loop_gain_options opt;
        opt.threads = threads;
        const analysis::loop_gain_result lg
            = analysis::measure_loop_gain(c, nodes.probe, freqs, opt);
        for (std::size_t k = 0; k < freqs.size(); ++k) {
            const cplx vx = run_v.solution[k][static_cast<std::size_t>(node_x)];
            const cplx vy = run_v.solution[k][static_cast<std::size_t>(node_y)];
            const cplx tv = -vx / vy;
            const cplx i = run_i.solution[k][branch];
            const cplx ti = -i / (i + cplx{1.0, 0.0});
            const cplx t = (tv * ti - cplx{1.0, 0.0}) / (tv + ti + cplx{2.0, 0.0});
            EXPECT_LT(std::abs(lg.t[k] - t), 1e-9 * std::max(std::abs(t), real{1.0}))
                << "f=" << freqs[k] << " threads=" << threads;
        }
    }
}

TEST(engine_equivalence, all_nodes_report_independent_of_thread_count)
{
    spice::circuit c;
    (void)circuits::build_opamp_buffer(c);
    core::stability_options serial;
    serial.sweep.points_per_decade = 30;
    serial.threads = 1;
    core::stability_analyzer an1(c, serial);
    const core::stability_report rep1 = an1.analyze_all_nodes();

    core::stability_options threaded = serial;
    threaded.threads = 4;
    core::stability_analyzer an4(c, threaded);
    const core::stability_report rep4 = an4.analyze_all_nodes();

    ASSERT_EQ(rep1.nodes.size(), rep4.nodes.size());
    ASSERT_EQ(rep1.skipped_nodes, rep4.skipped_nodes);
    for (std::size_t i = 0; i < rep1.nodes.size(); ++i) {
        EXPECT_EQ(rep1.nodes[i].node, rep4.nodes[i].node);
        EXPECT_EQ(rep1.nodes[i].has_peak, rep4.nodes[i].has_peak);
        if (rep1.nodes[i].has_peak) {
            EXPECT_NEAR(rep1.nodes[i].dominant.freq_hz, rep4.nodes[i].dominant.freq_hz,
                        1e-6 * rep1.nodes[i].dominant.freq_hz);
            EXPECT_NEAR(rep1.nodes[i].zeta, rep4.nodes[i].zeta,
                        1e-6 * std::max(rep1.nodes[i].zeta, real{1e-6}));
        }
    }
}

TEST(engine_equivalence, single_node_mode_matches_all_nodes_entry)
{
    spice::circuit c;
    circuits::add_parallel_rlc_tank(c, "tank", 0.25, 2e6);
    core::stability_options opt;
    opt.sweep.fstart = 1e4;
    opt.sweep.fstop = 1e8;
    core::stability_analyzer an(c, opt);
    const core::node_stability single = an.analyze_node("tank");
    ASSERT_TRUE(single.has_peak);
    EXPECT_NEAR(single.zeta, 0.25, 0.01);
    EXPECT_NEAR(single.dominant.freq_hz, 2e6, 4e4);
}

TEST(engine_equivalence, parameter_sweep_parallel_matches_serial)
{
    const auto factory = [](spice::circuit& c, real zeta) {
        circuits::add_parallel_rlc_tank(c, "tank", zeta, 1e6);
        return std::string("tank");
    };
    const std::vector<real> zetas{0.1, 0.2, 0.3, 0.5, 0.7, 0.9};
    core::stability_options opt;
    opt.sweep.fstart = 1e4;
    opt.sweep.fstop = 1e8;

    opt.threads = 1;
    const auto serial = core::sweep_stability(factory, zetas, opt);
    opt.threads = 4;
    const auto parallel = core::sweep_stability(factory, zetas, opt);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].parameter, parallel[i].parameter);
        ASSERT_EQ(serial[i].node.has_peak, parallel[i].node.has_peak);
        if (serial[i].node.has_peak)
            EXPECT_NEAR(serial[i].node.zeta, parallel[i].node.zeta, 1e-9);
    }
}

// --- snapshot internals ----------------------------------------------------

TEST(linearized_snapshot, assembles_exact_y_of_omega)
{
    spice::circuit c = make_rlc_circuit();
    const spice::dc_result op = spice::dc_operating_point(c);
    const engine::linearized_snapshot snap(c, op.solution, {});

    // Against a fresh direct stamp at an arbitrary frequency.
    const real f = 3.7e6;
    numeric::csc_matrix<cplx> work = snap.make_workspace();
    snap.assemble(to_omega(f), work);

    spice::ac_params p;
    p.omega = to_omega(f);
    spice::system_builder<cplx> b(c.unknown_count());
    for (const auto& dev : c.devices())
        dev->stamp_ac(op.solution, p, b);
    const numeric::csc_matrix<cplx> direct(b.matrix());

    const numeric::dense_matrix<cplx> dw = work.to_dense();
    const numeric::dense_matrix<cplx> dd = direct.to_dense();
    for (std::size_t r = 0; r < dw.rows(); ++r)
        for (std::size_t col = 0; col < dw.cols(); ++col)
            EXPECT_LT(std::abs(dw(r, col) - dd(r, col)),
                      1e-12 * std::max(std::abs(dd(r, col)), real{1.0}));
}

TEST(linearized_snapshot, survives_circuit_edits)
{
    spice::circuit c = make_rlc_circuit();
    const spice::dc_result op = spice::dc_operating_point(c);
    const engine::linearized_snapshot snap(c, op.solution, {});
    const std::size_t nnz_before = snap.nnz();
    c.add<spice::resistor>("rlater", c.node("out"), spice::ground_node, 1e6);
    EXPECT_EQ(snap.nnz(), nnz_before); // detached from the circuit
}

TEST(linearized_snapshot, validates_operating_point_size)
{
    spice::circuit c = make_rlc_circuit();
    std::vector<real> bad(2, 0.0);
    EXPECT_THROW((engine::linearized_snapshot{c, bad, {}}), analysis_error);
}

// --- sparse refactorization ------------------------------------------------

TEST(sparse_refactor, matches_fresh_factorization)
{
    // An MNA-like complex system whose values change with omega but whose
    // pattern stays fixed — the engine's exact workload.
    spice::circuit c;
    circuits::build_rc_ladder(c, 24);
    const spice::dc_result op = spice::dc_operating_point(c);
    const engine::linearized_snapshot snap(c, op.solution, {});

    numeric::csc_matrix<cplx> work = snap.make_workspace();
    snap.assemble(to_omega(1e3), work);
    numeric::sparse_lu<cplx>::options lopt;
    lopt.prepare_refactor = true;
    numeric::sparse_lu<cplx> lu(work, lopt);

    std::vector<cplx> rhs(snap.size(), cplx{});
    rhs[3] = cplx{1.0, 0.0};

    for (const real f : {1e4, 1e6, 1e8, 1e2}) {
        snap.assemble(to_omega(f), work);
        lu.refactor(work);
        const std::vector<cplx> x = lu.solve(rhs);
        const numeric::sparse_lu<cplx> fresh(work);
        const std::vector<cplx> y = fresh.solve(rhs);
        for (std::size_t i = 0; i < x.size(); ++i)
            EXPECT_LT(std::abs(x[i] - y[i]), 1e-9 * std::max(std::abs(y[i]), real{1e-12}))
                << "f=" << f;
    }
}

TEST(sparse_refactor, requires_preparation)
{
    spice::circuit c;
    circuits::build_rc_ladder(c, 4);
    const spice::dc_result op = spice::dc_operating_point(c);
    const engine::linearized_snapshot snap(c, op.solution, {});
    numeric::csc_matrix<cplx> work = snap.make_workspace();
    snap.assemble(to_omega(1e5), work);
    numeric::sparse_lu<cplx> lu(work); // default options: no refactor prep
    EXPECT_THROW(lu.refactor(work), numeric_error);
}

// --- thread pool -----------------------------------------------------------

TEST(thread_pool, covers_every_index_exactly_once)
{
    engine::thread_pool pool(3);
    constexpr std::size_t count = 1000;
    std::vector<std::atomic<int>> hits(count);
    pool.parallel_for(count, 4, [&hits](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < count; ++i)
        EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(thread_pool, propagates_the_first_exception)
{
    engine::thread_pool pool(2);
    EXPECT_THROW(pool.parallel_for(64, 3,
                                   [](std::size_t i) {
                                       if (i == 17)
                                           throw analysis_error("boom");
                                   }),
                 analysis_error);
}

TEST(thread_pool, nested_parallel_for_makes_progress)
{
    // Every worker blocks in an outer join while the inner jobs' helper
    // tasks sit in the queue; the waiters must drain them themselves.
    engine::thread_pool pool(2);
    std::atomic<int> total{0};
    pool.parallel_for(4, 4, [&pool, &total](std::size_t) {
        pool.parallel_for(2, 2, [&total](std::size_t) { ++total; });
    });
    EXPECT_EQ(total.load(), 8);
}

TEST(thread_pool, serial_when_one_worker_requested)
{
    engine::thread_pool pool(2);
    std::vector<std::size_t> order;
    pool.parallel_for(8, 1, [&order](std::size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 8u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i); // max_workers == 1 runs in order on the caller
}

// --- engine input validation ----------------------------------------------

TEST(sweep_engine, validates_inputs)
{
    spice::circuit c = make_rlc_circuit();
    const spice::dc_result op = spice::dc_operating_point(c);
    const engine::linearized_snapshot snap(c, op.solution, {});
    const engine::sweep_engine eng;
    const auto ignore = [](std::size_t, std::size_t, std::span<const cplx>) {};
    EXPECT_THROW(eng.run(snap, {}, {snap.stimulus_rhs()}, ignore), analysis_error);
    EXPECT_THROW(eng.run(snap, {-1.0}, {snap.stimulus_rhs()}, ignore), analysis_error);
    EXPECT_THROW(eng.run(snap, {1e3}, {std::vector<cplx>(2)}, ignore), analysis_error);
    EXPECT_THROW(eng.run_injections(snap, {1e3}, {{snap.size(), cplx{1.0, 0.0}}}, ignore),
                 analysis_error);
}

TEST(sweep_engine, sparse_injections_match_dense_rhs)
{
    spice::circuit c = make_rlc_circuit();
    const spice::dc_result op = spice::dc_operating_point(c);
    engine::snapshot_options sopt;
    sopt.zero_all_sources = true;
    const engine::linearized_snapshot snap(c, op.solution, sopt);
    const std::vector<real> freqs = numeric::log_space(1e4, 1e8, 30);

    std::vector<std::vector<cplx>> dense_batch;
    std::vector<engine::sweep_engine::injection> injections;
    for (const std::size_t k : {std::size_t{0}, std::size_t{2}}) {
        std::vector<cplx> rhs(snap.size(), cplx{});
        rhs[k] = cplx{1.0, 0.0};
        dense_batch.push_back(std::move(rhs));
        injections.push_back({k, cplx{1.0, 0.0}});
    }

    const engine::sweep_engine eng;
    std::vector<std::vector<cplx>> from_dense(freqs.size() * 2);
    eng.run(snap, freqs, dense_batch,
            [&from_dense](std::size_t fi, std::size_t ri, std::span<const cplx> sol) {
                from_dense[2 * fi + ri].assign(sol.begin(), sol.end());
            });
    std::vector<std::vector<cplx>> from_sparse(freqs.size() * 2);
    eng.run_injections(snap, freqs, injections,
                       [&from_sparse](std::size_t fi, std::size_t ri, std::span<const cplx> sol) {
                           from_sparse[2 * fi + ri].assign(sol.begin(), sol.end());
                       });
    ASSERT_EQ(from_dense.size(), from_sparse.size());
    for (std::size_t i = 0; i < from_dense.size(); ++i)
        EXPECT_EQ(from_dense[i], from_sparse[i]); // bit-identical
}

} // namespace
