// End-to-end reproduction checks on the paper's circuits: the Fig. 1
// op-amp buffer and the Fig. 5 bias generator. Tolerances are the
// shape-level bands from DESIGN.md, not exact numbers.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bode.h"
#include "analysis/pole_zero.h"
#include "analysis/transient_overshoot.h"
#include "circuits/bias.h"
#include "circuits/followers.h"
#include "circuits/opamp.h"
#include "core/analyzer.h"
#include "core/report.h"
#include "numeric/interpolation.h"
#include "spice/dc_analysis.h"

namespace {

using namespace acstab;

core::stability_options opamp_sweep()
{
    core::stability_options opt;
    opt.sweep.fstart = 1e3;
    opt.sweep.fstop = 1e9;
    opt.sweep.points_per_decade = 50;
    return opt;
}

TEST(opamp, dc_operating_point_is_sane)
{
    spice::circuit c;
    const circuits::opamp_nodes n = circuits::build_opamp_buffer(c);
    const spice::dc_result op = spice::dc_operating_point(c);
    // Buffer: output tracks the 2.5 V input within the offset budget.
    EXPECT_NEAR(spice::node_voltage(c, op.solution, n.out), 2.5, 0.05);
    // First stage biased between the rails.
    const real stg1 = spice::node_voltage(c, op.solution, n.stg1);
    EXPECT_GT(stg1, 3.0);
    EXPECT_LT(stg1, 4.8);
    const real tail = spice::node_voltage(c, op.solution, n.tail);
    EXPECT_GT(tail, 0.8);
    EXPECT_LT(tail, 2.2);
}

TEST(opamp, fig4_stability_peak_in_band)
{
    spice::circuit c;
    const circuits::opamp_nodes n = circuits::build_opamp_buffer(c);
    core::stability_analyzer an(c, opamp_sweep());
    const core::node_stability ns = an.analyze_node(n.out);
    ASSERT_TRUE(ns.has_peak);
    EXPECT_TRUE(ns.is_underdamped);
    // Paper: peak about -29 at about 3.2 MHz; band allows our substitute.
    EXPECT_GT(ns.dominant.freq_hz, 2.5e6);
    EXPECT_LT(ns.dominant.freq_hz, 4.0e6);
    EXPECT_LT(ns.dominant.value, -24.0);
    EXPECT_GT(ns.dominant.value, -40.0);
    // Estimated phase margin slightly below 20 degrees (paper section 3).
    EXPECT_GT(ns.phase_margin_est_deg, 14.0);
    EXPECT_LT(ns.phase_margin_est_deg, 22.0);
}

TEST(opamp, fig3_bode_margins_in_band)
{
    spice::circuit c;
    const circuits::opamp_nodes n = circuits::build_opamp_open_loop(c);
    const std::vector<real> freqs = numeric::log_space(1e2, 1e9, 300);
    const analysis::frequency_response fr
        = analysis::measure_response(c, "vstim", n.out, freqs);
    std::vector<cplx> loop(fr.h.size());
    for (std::size_t i = 0; i < loop.size(); ++i)
        loop[i] = -fr.h[i];
    const spice::bode_margins m = spice::margins(freqs, loop);
    ASSERT_TRUE(m.has_unity_crossing);
    // Paper: ~20 deg phase margin, 0 dB crossover in the low MHz.
    EXPECT_GT(m.phase_margin_deg, 15.0);
    EXPECT_LT(m.phase_margin_deg, 26.0);
    EXPECT_GT(m.unity_freq_hz, 1.5e6);
    EXPECT_LT(m.unity_freq_hz, 4.0e6);
}

TEST(opamp, fig2_step_overshoot_in_band)
{
    spice::circuit c;
    circuits::opamp_params p;
    p.step_volts = 0.01;
    const circuits::opamp_nodes n = circuits::build_opamp_buffer(c, p);
    analysis::step_options so;
    so.tstop = 6e-6;
    const analysis::step_response_metrics m = analysis::measure_step_response(c, n.out, so);
    // Paper: about 50-55 % overshoot.
    EXPECT_GT(m.overshoot_pct, 45.0);
    EXPECT_LT(m.overshoot_pct, 65.0);
}

TEST(opamp, method_consistency_stability_vs_transient_vs_pencil)
{
    // The paper's central claim (section 3): the stability plot predicts
    // the transient overshoot and the loop's natural frequency without
    // breaking the loop.
    spice::circuit c;
    const circuits::opamp_nodes n = circuits::build_opamp_buffer(c);
    core::stability_analyzer an(c, opamp_sweep());
    const core::node_stability ns = an.analyze_node(n.out);
    ASSERT_TRUE(ns.has_peak);

    // Against the (G,C) pencil ground truth.
    analysis::pole dom;
    ASSERT_TRUE(
        analysis::dominant_complex_pole(analysis::circuit_poles(c, an.operating_point()), dom));
    EXPECT_NEAR(ns.dominant.freq_hz, dom.freq_hz, 0.03 * dom.freq_hz);
    EXPECT_NEAR(ns.zeta, dom.zeta, 0.06 * dom.zeta + 0.01);

    // Against the measured transient overshoot.
    spice::circuit c2;
    circuits::opamp_params p2;
    p2.step_volts = 0.01;
    const circuits::opamp_nodes n2 = circuits::build_opamp_buffer(c2, p2);
    analysis::step_options so;
    so.tstop = 6e-6;
    const analysis::step_response_metrics m = analysis::measure_step_response(c2, n2.out, so);
    EXPECT_NEAR(ns.overshoot_est_pct, m.overshoot_pct, 6.0);
    EXPECT_NEAR(ns.dominant.freq_hz, m.ringing_freq_hz, 0.12 * ns.dominant.freq_hz);
}

TEST(opamp, table2_all_nodes_structure)
{
    spice::circuit c;
    const circuits::opamp_nodes n = circuits::build_opamp_buffer(c);
    core::stability_analyzer an(c, opamp_sweep());
    const core::stability_report rep = an.analyze_all_nodes();

    // The main loop groups the output, the feedback input and the
    // first-stage/compensation nodes at the same natural frequency.
    ASSERT_FALSE(rep.loops.empty());
    // Pick the most-populated group in the main-loop band (the tail node
    // can split into its own adjacent group, as in the paper's Table 2).
    const core::loop_group* main_loop = nullptr;
    for (const auto& loop : rep.loops)
        if (loop.freq_hz > 2.5e6 && loop.freq_hz < 4.0e6
            && (main_loop == nullptr || loop.members.size() > main_loop->members.size()))
            main_loop = &loop;
    ASSERT_NE(main_loop, nullptr);
    EXPECT_GE(main_loop->members.size(), 3u);
    bool has_out = false;
    for (const std::size_t idx : main_loop->members)
        if (rep.nodes[idx].node == n.out)
            has_out = true;
    EXPECT_TRUE(has_out);

    // The bias generator's local loop shows up in the tens of MHz.
    const core::loop_group* local_loop = nullptr;
    for (const auto& loop : rep.loops)
        if (loop.freq_hz > 3e7 && loop.freq_hz < 8e7)
            for (const std::size_t idx : loop.members)
                if (rep.nodes[idx].dominant.value < -3.0)
                    local_loop = &loop;
    ASSERT_NE(local_loop, nullptr);

    // Supply and driven input are skipped.
    EXPECT_EQ(rep.skipped_nodes.size(), 2u);
}

TEST(bias, local_loop_in_band_and_fix_damps_it)
{
    const auto dominant_local = [](bool compensated) {
        spice::circuit c;
        circuits::bias_params bp;
        bp.compensated = compensated;
        circuits::build_standalone_bias(c, bp);
        core::stability_analyzer an(c);
        analysis::pole dom;
        const bool found = analysis::dominant_complex_pole(
            analysis::circuit_poles(c, an.operating_point()), dom);
        EXPECT_TRUE(found);
        return dom;
    };
    const analysis::pole before = dominant_local(false);
    // Paper: local loop near 50 MHz with PM < 50 deg (zeta < 0.5).
    EXPECT_GT(before.freq_hz, 3.5e7);
    EXPECT_LT(before.freq_hz, 7e7);
    EXPECT_GT(before.zeta, 0.3);
    EXPECT_LT(before.zeta, 0.55);

    const analysis::pole after = dominant_local(true);
    EXPECT_GT(after.zeta, 0.65);
}

TEST(bias, stability_report_flags_the_follower_nodes)
{
    spice::circuit c;
    circuits::build_standalone_bias(c);
    core::stability_options opt;
    opt.sweep.fstart = 1e4;
    opt.sweep.fstop = 1e10;
    opt.sweep.points_per_decade = 40;
    core::stability_analyzer an(c, opt);
    const core::stability_report rep = an.analyze_all_nodes();
    bool rail_flagged = false;
    for (const auto& ns : rep.nodes)
        if ((ns.node == "b_ref" || ns.node == "b_fb") && ns.has_peak && ns.is_underdamped
            && ns.dominant.value < -3.0)
            rail_flagged = true;
    EXPECT_TRUE(rail_flagged);
}

TEST(followers, emitter_follower_rings_with_light_load)
{
    spice::circuit c;
    circuits::follower_params fp;
    fp.rsource = 3e3;
    fp.cload = 5e-12;
    circuits::build_emitter_follower(c, fp);
    core::stability_analyzer an(c);
    analysis::pole dom;
    ASSERT_TRUE(analysis::dominant_complex_pole(
        analysis::circuit_poles(c, an.operating_point()), dom));
    EXPECT_LT(dom.zeta, 0.4);
    EXPECT_GT(dom.freq_hz, 1e7);

    // And the stability sweep sees it at the follower's output node.
    core::stability_options opt;
    opt.sweep.fstart = 1e5;
    opt.sweep.fstop = 1e10;
    opt.sweep.points_per_decade = 40;
    core::stability_analyzer an2(c, opt);
    const core::node_stability ns = an2.analyze_node("f_out");
    ASSERT_TRUE(ns.has_peak);
    EXPECT_NEAR(ns.dominant.freq_hz, dom.freq_hz, 0.08 * dom.freq_hz);
    EXPECT_NEAR(ns.zeta, dom.zeta, 0.08);
}

TEST(followers, current_mirror_gate_is_well_damped)
{
    spice::circuit c;
    circuits::build_current_mirror(c);
    core::stability_analyzer an(c);
    const auto pairs
        = analysis::complex_pairs(analysis::circuit_poles(c, an.operating_point()));
    for (const auto& p : pairs)
        EXPECT_GT(p.zeta, 0.5) << "mirror should not ring at " << p.freq_hz;
}

} // namespace
