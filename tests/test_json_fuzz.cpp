// Adversarial / property tests for farm/json.h, the byte-stable JSON
// dialect every farm artifact and serve protocol frame rides on.
//
// The contract under test: for ANY input bytes, parse() either throws
// parse_error or yields a value whose canonical dump is a fixed point —
// dump(parse(dump(parse(x)))) == dump(parse(x)) — and it NEVER crashes,
// overflows the stack, or loops. Inputs include deterministic
// pseudo-random documents, their mutations (truncations, bit flips,
// doubled signs, inserted NULs), deep nesting around the depth limit,
// and the number-grammar edge cases the parser must reject.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.h"
#include "farm/json.h"

namespace {

using namespace acstab;
using farm::json_value;

/// Deterministic 64-bit LCG: the whole suite replays byte-for-byte.
struct lcg {
    std::uint64_t state;
    explicit lcg(std::uint64_t seed) : state(seed) {}
    std::uint64_t next()
    {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return state >> 17;
    }
    std::size_t below(std::size_t n) { return static_cast<std::size_t>(next() % n); }
};

[[nodiscard]] double random_double(lcg& r)
{
    switch (r.below(8)) {
    case 0: return 0.0;
    case 1: return -0.0;
    case 2: return static_cast<double>(r.next()) / 1e3;
    case 3: return -static_cast<double>(r.below(1000000));
    case 4: return 1e308 * (static_cast<double>(r.below(100)) / 50.0 - 1.0);
    case 5: return 5e-324 * static_cast<double>(r.below(100));
    default: {
        // Raw bit pattern: exercises subnormals, NaN and both infinities
        // (non-finite values dump as the strings "nan"/"inf"/"-inf").
        const std::uint64_t bits = r.next() | (r.next() << 32);
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }
    }
}

[[nodiscard]] std::string random_string(lcg& r)
{
    static const char alphabet[] =
        "abz 019\"\\/\b\f\n\r\t{}[]:,+-.eE\xc3\xa9\xe2\x82\xac";
    std::string s;
    const std::size_t len = r.below(12);
    for (std::size_t i = 0; i < len; ++i) {
        if (r.below(20) == 0)
            s += '\0'; // embedded NUL must round-trip via \u0000
        else
            s += alphabet[r.below(sizeof alphabet - 1)];
    }
    return s;
}

[[nodiscard]] json_value random_value(lcg& r, int depth)
{
    switch (depth <= 0 ? r.below(4) : r.below(6)) {
    case 0: return json_value();
    case 1: return json_value::boolean(r.below(2) == 0);
    case 2: return json_value::number(random_double(r));
    case 3: return json_value::str(random_string(r));
    case 4: {
        json_value arr = json_value::array();
        const std::size_t n = r.below(4);
        for (std::size_t i = 0; i < n; ++i)
            arr.push_back(random_value(r, depth - 1));
        return arr;
    }
    default: {
        json_value obj = json_value::object();
        const std::size_t n = r.below(4);
        for (std::size_t i = 0; i < n; ++i)
            obj.set(random_string(r), random_value(r, depth - 1));
        return obj;
    }
    }
}

/// The property: any bytes either fail to parse (parse_error) or reach a
/// canonical fixed point in one parse+dump. Returns the fixed point for
/// extra checks; nullopt means "rejected", which is always acceptable.
void expect_reject_or_fixed_point(const std::string& bytes)
{
    std::string first;
    try {
        first = json_value::parse(bytes).dump();
    } catch (const parse_error&) {
        return; // rejection is fine; crashing is not
    }
    const std::string second = json_value::parse(first).dump();
    EXPECT_EQ(first, second) << "canonical dump is not a parse fixed point for input: "
                             << bytes.substr(0, 200);
}

// --- generated documents round-trip byte-stably ----------------------------

TEST(json_fuzz, random_documents_round_trip_byte_stably)
{
    lcg r(0x5eedu);
    for (int i = 0; i < 2000; ++i) {
        const json_value v = random_value(r, 3);
        const std::string dumped = v.dump();
        json_value reparsed;
        try {
            reparsed = json_value::parse(dumped);
        } catch (const parse_error& e) {
            FAIL() << "canonical dump failed to parse: " << e.what()
                   << "\ndump: " << dumped.substr(0, 200);
        }
        EXPECT_EQ(reparsed.dump(), dumped);
    }
}

TEST(json_fuzz, mutated_documents_never_crash)
{
    lcg r(0xfacadeu);
    static const char inserts[] = "+-.eE\"\\[]{},:0un\x00\x01\x7f";
    for (int i = 0; i < 500; ++i) {
        std::string bytes = random_value(r, 3).dump();
        for (int m = 0; m < 6; ++m) {
            if (bytes.empty())
                break;
            const std::size_t pos = r.below(bytes.size());
            switch (r.below(5)) {
            case 0: bytes.resize(pos); break;                      // truncate
            case 1: bytes.erase(pos, 1); break;                    // drop byte
            case 2: bytes.insert(pos, 1, bytes[pos]); break;       // double byte
            case 3:                                                // insert token char
                bytes.insert(pos, 1, inserts[r.below(sizeof inserts - 1)]);
                break;
            default:                                               // flip a bit
                bytes[pos] = static_cast<char>(bytes[pos]
                                               ^ (1 << r.below(8)));
                break;
            }
            expect_reject_or_fixed_point(bytes);
        }
    }
}

TEST(json_fuzz, truncated_frames_are_rejected_or_stable_at_every_length)
{
    const std::string doc = "{\"schema\":\"acstab-farm-shard-v1\",\"records\":"
                            "[{\"index\":3,\"f\":[1e4,-2.5e-9],\"s\":\"nan\"}],"
                            "\"n\":-0.125}";
    for (std::size_t len = 0; len <= doc.size(); ++len)
        expect_reject_or_fixed_point(doc.substr(0, len));
}

// --- number grammar edge cases ---------------------------------------------

TEST(json_fuzz, malformed_numbers_are_rejected)
{
    for (const char* bad : {"+5", "+-5", "--5", "-+5", "5..5", "1e", "1e+",
                            "0x10", "1_000", "- 5", "5 5"})
        EXPECT_THROW((void)json_value::parse(bad), parse_error) << bad;
    // The scanner is lenient about a bare leading/trailing dot, but the
    // canonical re-dump must still be a stable fixed point.
    expect_reject_or_fixed_point(".5");
    expect_reject_or_fixed_point("5.");
}

TEST(json_fuzz, doubled_signs_inside_documents_are_rejected)
{
    EXPECT_THROW((void)json_value::parse("{\"x\":--1}"), parse_error);
    EXPECT_THROW((void)json_value::parse("[1,+2]"), parse_error);
    EXPECT_THROW((void)json_value::parse("[1e--5]"), parse_error);
}

TEST(json_fuzz, extreme_but_valid_numbers_round_trip)
{
    for (const char* text : {"-0", "1e308", "5e-324", "0.1", "-2.5e-9",
                             "9007199254740993", "1e-308"})
        expect_reject_or_fixed_point(text);
}

TEST(json_fuzz, non_finite_spellings_round_trip_as_strings)
{
    // Canonical spelling: the strings "nan"/"inf"/"-inf".
    for (const char* text : {"\"nan\"", "\"inf\"", "\"-inf\""}) {
        const json_value v = json_value::parse(text);
        EXPECT_EQ(v.dump(), text);
    }
    EXPECT_TRUE(std::isnan(json_value::parse("\"nan\"").as_number()));
    EXPECT_TRUE(std::isinf(json_value::parse("\"-inf\"").as_number()));
    // Legacy bare tokens (older to_chars dumps) still parse, and their
    // canonical re-dump is the string spelling — stable from then on.
    expect_reject_or_fixed_point("nan");
    expect_reject_or_fixed_point("[inf,-inf]");
    // A number that IS non-finite dumps as the string spelling.
    EXPECT_EQ(json_value::number(std::nan("")).dump(), "\"nan\"");
}

// --- nesting depth ---------------------------------------------------------

TEST(json_fuzz, nesting_up_to_the_limit_parses_and_beyond_is_rejected)
{
    const auto nested = [](std::size_t depth) {
        return std::string(depth, '[') + std::string(depth, ']');
    };
    // 127 containers: within the documented limit of 128.
    const std::string deep_ok = nested(127);
    EXPECT_EQ(json_value::parse(deep_ok).dump(), deep_ok);
    try {
        (void)json_value::parse(nested(200));
        FAIL() << "200-deep nesting must be rejected";
    } catch (const parse_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("deep"), std::string::npos) << what;
        EXPECT_NE(what.find("offset"), std::string::npos) << what;
    }
}

TEST(json_fuzz, pathologically_deep_input_fails_fast_without_stack_overflow)
{
    // 100k opening brackets: the depth guard must trip long before any
    // recursion gets dangerous, for arrays, objects and mixtures.
    EXPECT_THROW((void)json_value::parse(std::string(100000, '[')), parse_error);
    std::string objs;
    for (int i = 0; i < 100000; ++i)
        objs += "{\"k\":";
    EXPECT_THROW((void)json_value::parse(objs), parse_error);
    std::string mixed;
    for (int i = 0; i < 50000; ++i)
        mixed += "[{\"k\":";
    EXPECT_THROW((void)json_value::parse(mixed), parse_error);
}

// --- strings: NULs, escapes, garbage ---------------------------------------

TEST(json_fuzz, embedded_nul_round_trips_through_the_escape)
{
    json_value v = json_value::str(std::string("a\0b", 3));
    const std::string dumped = v.dump();
    const json_value back = json_value::parse(dumped);
    EXPECT_EQ(back.as_string(), v.as_string());
    EXPECT_EQ(back.dump(), dumped);
    // \u0000 in source text produces a real NUL in the value.
    EXPECT_EQ(json_value::parse("\"\\u0000\"").as_string(), std::string(1, '\0'));
}

TEST(json_fuzz, raw_nul_and_control_bytes_inside_input_never_crash)
{
    expect_reject_or_fixed_point(std::string("\"a\0b\"", 5));
    expect_reject_or_fixed_point(std::string("{\"a\0\":1}", 8));
    expect_reject_or_fixed_point(std::string("\0", 1));
    expect_reject_or_fixed_point("\"tab\there\"");
}

TEST(json_fuzz, broken_escapes_and_trailing_garbage_are_rejected)
{
    for (const char* bad :
         {"\"\\", "\"\\q\"", "\"\\u12\"", "\"\\u12G4\"", "\"unterminated",
          "{\"a\":1}x", "[1,2],", "truefalse", "nul", "\"a\" \"b\""})
        EXPECT_THROW((void)json_value::parse(bad), parse_error) << bad;
}

} // namespace
