// Cross-cutting property tests: physical invariants the whole stack must
// satisfy regardless of circuit values.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "circuits/rlc.h"
#include "common/error.h"
#include "core/analyzer.h"
#include "numeric/eig.h"
#include "numeric/lu.h"
#include "numeric/sparse_lu.h"
#include "spice/ac_analysis.h"
#include "spice/circuit.h"
#include "spice/dc_analysis.h"
#include "spice/devices/passive.h"
#include "spice/devices/sources.h"
#include "spice/tran_analysis.h"

namespace {

using namespace acstab;
using namespace acstab::spice;

// ---- reciprocity: Z(a<-b) == Z(b<-a) for R/L/C networks -------------------

TEST(property, reciprocity_of_transfer_impedance)
{
    // Random RC mesh; inject at a, read b, then swap. Reciprocal networks
    // must give identical transfer impedances.
    std::mt19937 rng(2024);
    std::uniform_real_distribution<real> rdist(100.0, 10e3);
    std::uniform_real_distribution<real> cdist(1e-12, 1e-9);
    for (int trial = 0; trial < 5; ++trial) {
        circuit c;
        const std::size_t n = 6;
        std::vector<node_id> nodes;
        for (std::size_t k = 0; k < n; ++k)
            nodes.push_back(c.node("n" + std::to_string(k)));
        int dev = 0;
        for (std::size_t i = 0; i < n; ++i) {
            c.add<resistor>("rg" + std::to_string(i), nodes[i], ground_node, rdist(rng));
            for (std::size_t j = i + 1; j < n; ++j) {
                if ((rng() & 1u) != 0)
                    c.add<resistor>("r" + std::to_string(dev++), nodes[i], nodes[j],
                                    rdist(rng));
                if ((rng() & 1u) != 0)
                    c.add<capacitor>("c" + std::to_string(dev++), nodes[i], nodes[j],
                                     cdist(rng));
            }
        }
        const dc_result op = dc_operating_point(c);
        const std::size_t unknowns = c.unknown_count();

        const auto transfer = [&](node_id from, node_id to) {
            system_builder<cplx> b(unknowns);
            ac_params p;
            p.omega = to_omega(1e6);
            for (const auto& d : c.devices())
                d->stamp_ac(op.solution, p, b);
            std::vector<cplx> rhs(unknowns, cplx{});
            rhs[static_cast<std::size_t>(from)] = cplx{1.0, 0.0};
            factored_system<cplx> fact(b, solver_kind::sparse);
            return fact.solve(rhs)[static_cast<std::size_t>(to)];
        };
        const cplx zab = transfer(nodes[0], nodes[4]);
        const cplx zba = transfer(nodes[4], nodes[0]);
        EXPECT_LT(std::abs(zab - zba), 1e-9 * std::abs(zab)) << "trial " << trial;
    }
}

// ---- superposition in AC ---------------------------------------------------

TEST(property, ac_superposition)
{
    circuit c;
    const node_id a = c.node("a");
    const node_id b = c.node("b");
    auto& v1 = c.add<vsource>("v1", a, ground_node, waveform_spec::make_ac(0.0, 1.0));
    auto& i2 = c.add<isource>("i2", ground_node, b, waveform_spec::make_ac(0.0, 2e-3));
    c.add<resistor>("r1", a, b, 1e3);
    c.add<resistor>("r2", b, ground_node, 2e3);
    c.add<capacitor>("c1", b, ground_node, 1e-9);
    const dc_result op = dc_operating_point(c);

    const auto response_at_b = [&](const device* only) {
        ac_options opt;
        opt.exclusive_source = only;
        const ac_result res = ac_sweep(c, {1e5}, op.solution, opt);
        return node_response(c, res, "b")[0];
    };
    const cplx both = response_at_b(nullptr);
    const cplx just_v = response_at_b(&v1);
    const cplx just_i = response_at_b(&i2);
    EXPECT_LT(std::abs(both - (just_v + just_i)), 1e-12 + 1e-9 * std::abs(both));
}

// ---- trapezoidal order of accuracy ----------------------------------------

TEST(property, trapezoidal_error_scales_quadratically)
{
    // RC charging curve: global error at t = 2 tau should drop ~4x when
    // the step is halved.
    const auto error_at = [](real dt) {
        circuit c;
        const node_id in = c.node("in");
        const node_id out = c.node("out");
        c.add<vsource>("vin", in, ground_node, waveform_spec::make_step(0.0, 1.0, 0.0, 1e-12));
        c.add<resistor>("r1", in, out, 1e3);
        c.add<capacitor>("c1", out, ground_node, 1e-9);
        tran_options opt;
        opt.tstop = 2e-6;
        opt.dt = dt;
        const tran_result res = transient(c, opt);
        const std::vector<real> v = node_waveform(c, res, "out");
        real worst = 0.0;
        for (std::size_t i = 1; i < res.time.size(); ++i) {
            const real expected = 1.0 - std::exp(-res.time[i] / 1e-6);
            worst = std::max(worst, std::fabs(v[i] - expected));
        }
        return worst;
    };
    const real e1 = error_at(4e-8);
    const real e2 = error_at(2e-8);
    const real e4 = error_at(1e-8);
    EXPECT_GT(e1 / e2, 3.0);
    EXPECT_LT(e1 / e2, 5.0);
    EXPECT_GT(e2 / e4, 3.0);
    EXPECT_LT(e2 / e4, 5.0);
}

// ---- sparse LU across sizes (parameterized) --------------------------------

class sparse_sizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(sparse_sizes, tridiagonal_round_trip)
{
    const std::size_t n = GetParam();
    numeric::triplet_matrix<real> t(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        t.add(i, i, 2.0 + 0.01 * static_cast<real>(i));
        if (i + 1 < n) {
            t.add(i, i + 1, -1.0);
            t.add(i + 1, i, -0.9);
        }
    }
    std::vector<real> x_true(n);
    for (std::size_t i = 0; i < n; ++i)
        x_true[i] = std::sin(static_cast<real>(i));
    const numeric::csc_matrix<real> a(t);
    const std::vector<real> b = a.multiply(x_true);
    const std::vector<real> x = numeric::sparse_lu<real>(a).solve(b);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x[i], x_true[i], 1e-8) << "n=" << n << " i=" << i;
}

INSTANTIATE_TEST_SUITE_P(sizes, sparse_sizes, ::testing::Values(2, 5, 17, 64, 257, 1000));

// ---- eigenvalues invariant under similarity --------------------------------

TEST(property, eig_similarity_invariance)
{
    std::mt19937 rng(5);
    std::uniform_real_distribution<real> dist(-1.0, 1.0);
    const std::size_t n = 6;
    numeric::dense_matrix<real> a(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            a(i, j) = dist(rng);
    // Similarity by a diagonal scaling: D A D^-1.
    numeric::dense_matrix<real> b(n, n);
    const real scales[] = {1.0, 10.0, 0.1, 100.0, 0.01, 5.0};
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            b(i, j) = a(i, j) * scales[i] / scales[j];
    auto ea = numeric::eigenvalues(a);
    auto eb = numeric::eigenvalues(b);
    const auto key = [](const cplx& u, const cplx& v) {
        return u.real() != v.real() ? u.real() < v.real() : u.imag() < v.imag();
    };
    std::sort(ea.begin(), ea.end(), key);
    std::sort(eb.begin(), eb.end(), key);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_LT(std::abs(ea[i] - eb[i]), 1e-7);
}

// ---- the stability plot is invariant to where in the loop you probe --------

TEST(property, probe_position_invariance_for_shared_loop)
{
    // Every node that carries a loop's complex pair must report the same
    // natural frequency and (closely) the same peak value — the basis of
    // the paper's loop grouping.
    circuit c;
    circuits::add_parallel_rlc_tank(c, "tank", 0.25, 1e6);
    const node_id tap1 = c.node("tap1");
    const node_id tap2 = c.node("tap2");
    c.add<resistor>("rt1", *c.find_node("tank"), tap1, 5.0);
    c.add<resistor>("rt2", tap1, tap2, 5.0);
    c.add<capacitor>("ct2", tap2, ground_node, 1e-14);

    core::stability_options opt;
    opt.sweep.fstart = 1e4;
    opt.sweep.fstop = 1e8;
    opt.sweep.points_per_decade = 50;
    core::stability_analyzer an(c, opt);
    const core::stability_report rep = an.analyze_all_nodes();
    ASSERT_EQ(rep.loops.size(), 1u);
    EXPECT_EQ(rep.loops[0].members.size(), 3u);
    for (const std::size_t idx : rep.loops[0].members) {
        EXPECT_NEAR(rep.nodes[idx].dominant.freq_hz, 1e6, 2e4);
        EXPECT_NEAR(rep.nodes[idx].zeta, 0.25, 0.02);
    }
}

// ---- gshunt does not distort peaks at realistic values ----------------------

TEST(property, gshunt_insensitivity)
{
    const auto peak_with = [](real gshunt) {
        circuit c;
        circuits::add_parallel_rlc_tank(c, "tank", 0.2, 1e6);
        core::stability_options opt;
        opt.gshunt = gshunt;
        opt.sweep.fstart = 1e4;
        opt.sweep.fstop = 1e8;
        opt.sweep.points_per_decade = 50;
        core::stability_analyzer an(c, opt);
        return an.analyze_node("tank").dominant.value;
    };
    const real a = peak_with(1e-12);
    const real b = peak_with(1e-9);
    EXPECT_NEAR(a, b, 1e-3 * std::fabs(a));
}

} // namespace
