// `acstab serve`: protocol frame parsing/building, and end-to-end
// robustness of the campaign service over a unix socket — streaming,
// byte-identical reports, malformed/oversized frames, overload shedding,
// cancellation, deadlines, client disconnects and graceful drain.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.h"
#include "farm/campaign.h"
#include "farm/executor.h"
#include "farm/json.h"
#include "serve/protocol.h"
#include "serve/server.h"

#ifndef ACSTAB_TOOL_PATH
#define ACSTAB_TOOL_PATH ""
#endif

namespace {

using namespace acstab;
using farm::json_value;

constexpr const char* tank_netlist = R"(* parameterized RLC tank
.param rval=397.887 cval=1n
r1 tank 0 {rval}
l1 tank 0 25.3303u
c1 tank 0 {cval}
.stability tank 1e4 1e8 40
.end
)";

[[nodiscard]] std::string tank_netlist_path()
{
    static const std::string path = [] {
        const std::string p = "test_serve_tank.sp";
        std::ofstream out(p, std::ios::binary);
        out << tank_netlist;
        return p;
    }();
    return path;
}

[[nodiscard]] farm::campaign_spec small_campaign()
{
    farm::campaign_spec spec;
    spec.netlist = tank_netlist_path();
    spec.node = "tank";
    spec.fstart = 1e4;
    spec.fstop = 1e8;
    spec.points_per_decade = 40;
    spec.grid.temps = {0.0, 50.0};
    spec.grid.axes = {{"cval", {0.8e-9, 1.2e-9}}};
    return spec;
}

[[nodiscard]] std::string read_file_bytes(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

[[nodiscard]] std::string legacy_report_bytes(const farm::campaign_spec& spec)
{
    const std::vector<farm::point_record> records = farm::run_shard(spec, 0, 1);
    const farm::json_value doc = farm::shard_to_json(spec, 0, 1, records);
    return farm::merge_shards(spec, {doc}).dump() + "\n";
}

[[nodiscard]] std::string submit_line(const std::string& id,
                                      const farm::campaign_spec& spec,
                                      const std::string& extra = "")
{
    return "{\"op\":\"submit\",\"id\":\"" + id + "\",\"plan\":" + to_json(spec).dump()
        + extra + "}\n";
}

struct fault_env {
    explicit fault_env(const std::string& directives)
    {
        ::setenv("ACSTAB_FAULT_INJECT", directives.c_str(), 1);
    }
    ~fault_env() { ::unsetenv("ACSTAB_FAULT_INJECT"); }
};

/// Server under test: run_server on its own thread, scratch dirs wiped,
/// shutdown flag + join on destruction (so a failing test cannot hang
/// the suite with a live server).
struct serve_fixture {
    serve::serve_options opt;
    volatile std::sig_atomic_t shutdown_flag = 0;
    serve::serve_summary summary;
    std::thread thread;
    bool joined = false;

    explicit serve_fixture(const std::string& name)
    {
        opt.socket_path = "test_serve_" + name + ".sock";
        opt.root_dir = "test_serve_" + name + ".work";
        opt.tool_path = ACSTAB_TOOL_PATH;
        opt.workers = 2;
        opt.verbose = false;
        opt.backoff_s = 0.02;
        opt.shutdown = &shutdown_flag;
        std::filesystem::remove_all(opt.root_dir);
        std::filesystem::remove(opt.socket_path);
    }

    void start()
    {
        thread = std::thread([this] { summary = serve::run_server(opt); });
        // The socket appears once the listener is bound.
        for (int i = 0; i < 500; ++i) {
            if (::access(opt.socket_path.c_str(), F_OK) == 0)
                return;
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        FAIL() << "server never bound " << opt.socket_path;
    }

    void stop(int level = 1)
    {
        if (joined)
            return;
        shutdown_flag = static_cast<std::sig_atomic_t>(level);
        thread.join();
        joined = true;
    }

    ~serve_fixture()
    {
        if (!joined && thread.joinable()) {
            shutdown_flag = 2;
            thread.join();
        }
    }
};

/// Blocking line-oriented test client on the fixture's unix socket.
struct client {
    int fd = -1;
    std::string buf;

    explicit client(const serve_fixture& fx)
    {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            throw std::runtime_error("socket: " + std::string(std::strerror(errno)));
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::memcpy(addr.sun_path, fx.opt.socket_path.c_str(),
                    fx.opt.socket_path.size() + 1);
        if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0)
            throw std::runtime_error("connect: " + std::string(std::strerror(errno)));
    }

    ~client()
    {
        if (fd >= 0)
            ::close(fd);
    }

    void send(const std::string& text) const
    {
        ASSERT_EQ(::send(fd, text.data(), text.size(), MSG_NOSIGNAL),
                  static_cast<ssize_t>(text.size()));
    }

    /// Next reply line, or nullopt on timeout/EOF.
    [[nodiscard]] std::optional<std::string> read_line(double timeout_s = 30.0)
    {
        const auto deadline = std::chrono::steady_clock::now()
            + std::chrono::milliseconds(static_cast<long>(timeout_s * 1e3));
        while (true) {
            const std::size_t nl = buf.find('\n');
            if (nl != std::string::npos) {
                std::string line = buf.substr(0, nl);
                buf.erase(0, nl + 1);
                return line;
            }
            const auto left = deadline - std::chrono::steady_clock::now();
            if (left.count() <= 0)
                return std::nullopt;
            pollfd p{fd, POLLIN, 0};
            const int rc = ::poll(
                &p, 1,
                static_cast<int>(
                    std::chrono::duration_cast<std::chrono::milliseconds>(left).count()));
            if (rc <= 0)
                continue;
            char chunk[65536];
            const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
            if (n <= 0)
                return std::nullopt; // EOF or error
            buf.append(chunk, static_cast<std::size_t>(n));
        }
    }

    /// Read frames until one matches `frame` kind (skipping others);
    /// nullopt on timeout.
    [[nodiscard]] std::optional<json_value> read_frame(const std::string& frame,
                                                       double timeout_s = 60.0)
    {
        while (true) {
            const std::optional<std::string> line = read_line(timeout_s);
            if (!line)
                return std::nullopt;
            json_value doc = json_value::parse(*line);
            if (doc.at("frame").as_string() == frame)
                return doc;
        }
    }
};

// --- protocol units --------------------------------------------------------

TEST(serve_protocol, parses_the_three_request_ops)
{
    const serve::request_frame ping = serve::parse_request_frame("{\"op\":\"ping\"}");
    EXPECT_EQ(ping.kind, serve::request_frame::op::ping);

    const serve::request_frame cancel
        = serve::parse_request_frame("{\"op\":\"cancel\",\"id\":\"job-1\"}");
    EXPECT_EQ(cancel.kind, serve::request_frame::op::cancel);
    EXPECT_EQ(cancel.id, "job-1");

    const serve::request_frame submit = serve::parse_request_frame(
        "{\"op\":\"submit\",\"id\":\"j\",\"plan\":{},\"deadline_s\":2.5,\"workers\":3}");
    EXPECT_EQ(submit.kind, serve::request_frame::op::submit);
    EXPECT_TRUE(submit.has_deadline);
    EXPECT_DOUBLE_EQ(submit.deadline_s, 2.5);
    EXPECT_TRUE(submit.has_workers);
    EXPECT_EQ(submit.workers, 3u);
}

TEST(serve_protocol, rejects_malformed_requests_with_specific_errors)
{
    EXPECT_THROW((void)serve::parse_request_frame("[]"), analysis_error);
    EXPECT_THROW((void)serve::parse_request_frame("{\"op\":\"dance\",\"id\":\"x\"}"),
                 analysis_error);
    EXPECT_THROW((void)serve::parse_request_frame("{\"op\":\"submit\",\"plan\":{}}"),
                 analysis_error);
    EXPECT_THROW((void)serve::parse_request_frame("{\"op\":\"cancel\",\"id\":\"\"}"),
                 analysis_error);
    EXPECT_THROW((void)serve::parse_request_frame(
                     "{\"op\":\"submit\",\"id\":\"x\",\"plan\":{},\"deadline_s\":-1}"),
                 analysis_error);
    EXPECT_THROW((void)serve::parse_request_frame("{\"op\":"), parse_error);
}

TEST(serve_protocol, parse_offset_extraction)
{
    EXPECT_EQ(serve::parse_offset_of("parse: json: bad literal at offset 17"), 17);
    EXPECT_EQ(serve::parse_offset_of("no offset here"), -1);
    EXPECT_EQ(serve::parse_offset_of("at offset "), -1);
}

TEST(serve_protocol, reply_frames_are_canonical_json_lines)
{
    EXPECT_EQ(serve::ack_frame("a\"b", 4, 1, "d"),
              "{\"frame\":\"ack\",\"id\":\"a\\\"b\",\"points\":4,\"queued\":1,"
              "\"dir\":\"d\"}\n");
    EXPECT_EQ(serve::point_frame("j", 2, "{\"x\":1}"),
              "{\"frame\":\"point\",\"id\":\"j\",\"index\":2,\"record\":{\"x\":1}}\n");
    EXPECT_EQ(serve::error_frame("", "bad at offset 3", 3),
              "{\"frame\":\"error\",\"error\":\"bad at offset 3\",\"offset\":3}\n");
    EXPECT_EQ(serve::overloaded_frame("j", 2, 4),
              "{\"frame\":\"overloaded\",\"id\":\"j\",\"running\":2,\"queued\":4}\n");
    EXPECT_EQ(serve::pong_frame(), "{\"frame\":\"pong\"}\n");
    // Every reply frame re-parses in the same dialect.
    (void)json_value::parse("{\"frame\":\"error\",\"error\":\"x\"}");
}

// --- end-to-end over a unix socket -----------------------------------------

TEST(serve_e2e, streams_points_and_delivers_byte_identical_report)
{
    const farm::campaign_spec spec = small_campaign();
    serve_fixture fx("full");
    fx.start();
    client c(fx);
    c.send(submit_line("job", spec));

    const std::optional<json_value> ack = c.read_frame("ack");
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(ack->at("id").as_string(), "job");
    EXPECT_EQ(ack->at("points").as_index(), 4u);
    const std::string req_dir = ack->at("dir").as_string();

    std::size_t points_seen = 0;
    json_value report;
    while (true) {
        const std::optional<std::string> line = c.read_line(120.0);
        ASSERT_TRUE(line.has_value()) << "timed out waiting for frames";
        const json_value doc = json_value::parse(*line);
        const std::string& frame = doc.at("frame").as_string();
        if (frame == "point") {
            ++points_seen;
            EXPECT_EQ(doc.at("record").at("index").as_index(),
                      doc.at("index").as_index());
        } else if (frame == "report") {
            report = doc;
            break;
        } else {
            FAIL() << "unexpected frame: " << *line;
        }
    }
    EXPECT_EQ(points_seen, 4u);
    EXPECT_EQ(report.at("completed").as_index(), 4u);
    EXPECT_EQ(report.at("quarantined").as_index(), 0u);

    // The served report is byte-identical to the single-process path:
    // both the spliced frame payload and the on-disk report file.
    const std::string truth = legacy_report_bytes(spec);
    EXPECT_EQ(report.at("report").dump() + "\n", truth);
    EXPECT_EQ(read_file_bytes(req_dir + "/report.json"), truth);

    fx.stop();
    EXPECT_TRUE(fx.summary.drained);
    EXPECT_EQ(fx.summary.accepted, 1u);
    EXPECT_EQ(fx.summary.completed, 1u);
    EXPECT_EQ(fx.summary.failed, 0u);
}

TEST(serve_e2e, malformed_oversized_and_overdeep_frames_get_structured_errors)
{
    serve_fixture fx("proto");
    fx.opt.max_frame_bytes = 512;
    fx.start();
    client c(fx);

    // Malformed JSON: error frame with the parser's byte offset.
    c.send("{\"op\": pang}\n");
    const std::optional<json_value> bad = c.read_frame("error", 10.0);
    ASSERT_TRUE(bad.has_value());
    EXPECT_GE(bad->at("offset").as_number(), 0.0);

    // Over-deep nesting: rejected structurally, never a crash.
    std::string deep = "{\"op\":\"submit\",\"id\":\"d\",\"plan\":";
    for (int i = 0; i < 200; ++i)
        deep += "[";
    for (int i = 0; i < 200; ++i)
        deep += "]";
    c.send(deep + "}\n");
    const std::optional<json_value> toodeep = c.read_frame("error", 10.0);
    ASSERT_TRUE(toodeep.has_value());
    EXPECT_NE(toodeep->at("error").as_string().find("deep"), std::string::npos)
        << toodeep->at("error").as_string();

    // Oversized frame without a newline: one error naming the limit, the
    // overflowing bytes are discarded up to the next newline.
    c.send(std::string(2000, 'x'));
    const std::optional<json_value> toolong = c.read_frame("error", 10.0);
    ASSERT_TRUE(toolong.has_value());
    EXPECT_NE(toolong->at("error").as_string().find("512"), std::string::npos);
    c.send("tail-of-oversized-frame\n");

    // The connection survived all three: ping still answers.
    c.send("{\"op\":\"ping\"}\n");
    const std::optional<json_value> pong = c.read_frame("pong", 10.0);
    EXPECT_TRUE(pong.has_value());

    fx.stop();
    EXPECT_EQ(fx.summary.protocol_errors, 3u);
    EXPECT_EQ(fx.summary.accepted, 0u);
}

TEST(serve_e2e, overload_sheds_with_explicit_reply)
{
    const farm::campaign_spec spec = small_campaign();
    serve_fixture fx("overload");
    fx.opt.max_concurrent = 1;
    fx.opt.queue_depth = 0;
    fx.start();
    client c(fx);

    c.send(submit_line("first", spec));
    const std::optional<json_value> ack = c.read_frame("ack");
    ASSERT_TRUE(ack.has_value());

    // Second submit while the first runs: explicit shed, not a hang.
    c.send(submit_line("second", spec));
    const std::optional<json_value> shed = c.read_frame("overloaded", 30.0);
    ASSERT_TRUE(shed.has_value());
    EXPECT_EQ(shed->at("id").as_string(), "second");
    EXPECT_EQ(shed->at("running").as_index(), 1u);

    // The first request is unharmed by the shed.
    const std::optional<json_value> report = c.read_frame("report", 120.0);
    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(report->at("id").as_string(), "first");

    fx.stop();
    EXPECT_EQ(fx.summary.shed, 1u);
    EXPECT_EQ(fx.summary.completed, 1u);
}

TEST(serve_e2e, cancel_stops_request_and_leaves_it_resumable)
{
    const farm::campaign_spec spec = small_campaign();
    serve_fixture fx("cancel");
    // Point 2 stalls forever (every attempt): without the cancel the
    // request would sit in the 300s point timeout.
    const fault_env env("stall:2:600:always");
    fx.start();
    client c(fx);
    c.send(submit_line("job", spec));
    const std::optional<json_value> ack = c.read_frame("ack");
    ASSERT_TRUE(ack.has_value());

    // Wait for at least one streamed point so the campaign is mid-flight.
    const std::optional<json_value> point = c.read_frame("point", 60.0);
    ASSERT_TRUE(point.has_value());
    c.send("{\"op\":\"cancel\",\"id\":\"job\"}\n");

    const std::optional<json_value> stopped = c.read_frame("error", 60.0);
    ASSERT_TRUE(stopped.has_value());
    const std::string& msg = stopped->at("error").as_string();
    EXPECT_NE(msg.find("cancelled"), std::string::npos) << msg;
    EXPECT_NE(msg.find("--resume"), std::string::npos) << msg;

    // The server is fine; the connection is fine.
    c.send("{\"op\":\"ping\"}\n");
    EXPECT_TRUE(c.read_frame("pong", 10.0).has_value());

    fx.stop();
    EXPECT_EQ(fx.summary.cancelled, 1u);
}

TEST(serve_e2e, deadline_checkpoints_an_overrunning_request)
{
    const farm::campaign_spec spec = small_campaign();
    serve_fixture fx("deadline");
    const fault_env env("stall:0:600:always"); // first point never finishes
    fx.start();
    client c(fx);
    c.send(submit_line("slow", spec, ",\"deadline_s\":2"));
    ASSERT_TRUE(c.read_frame("ack").has_value());

    const std::optional<json_value> stopped = c.read_frame("error", 60.0);
    ASSERT_TRUE(stopped.has_value());
    EXPECT_NE(stopped->at("error").as_string().find("deadline_s exceeded"),
              std::string::npos)
        << stopped->at("error").as_string();

    fx.stop();
    EXPECT_EQ(fx.summary.cancelled, 1u);
}

TEST(serve_e2e, client_disconnect_cancels_only_its_request)
{
    const farm::campaign_spec spec = small_campaign();
    serve_fixture fx("hangup");
    const fault_env env("stall:2:600:always");
    fx.start();
    {
        client doomed(fx);
        doomed.send(submit_line("orphan", spec));
        ASSERT_TRUE(doomed.read_frame("ack").has_value());
        ASSERT_TRUE(doomed.read_frame("point", 60.0).has_value());
        // Destructor closes the socket: the server must notice, cancel
        // the request and reap its workers.
    }
    client other(fx);
    other.send("{\"op\":\"ping\"}\n");
    EXPECT_TRUE(other.read_frame("pong", 10.0).has_value());

    // stop() drains: if the orphaned request were still running its
    // stalled worker, this join would block on the 600s stall.
    fx.stop();
    EXPECT_EQ(fx.summary.cancelled, 1u);
    EXPECT_EQ(fx.summary.completed, 0u);
}

TEST(serve_e2e, drain_checkpoints_in_flight_requests_after_grace)
{
    const farm::campaign_spec spec = small_campaign();
    serve_fixture fx("drain");
    fx.opt.drain_grace_s = 1.0;
    const fault_env env("stall:2:600:always");
    fx.start();
    client c(fx);
    c.send(submit_line("job", spec));
    ASSERT_TRUE(c.read_frame("ack").has_value());
    ASSERT_TRUE(c.read_frame("point", 60.0).has_value());

    fx.shutdown_flag = 1; // SIGTERM equivalent: drain
    // Give the 200ms poll loop time to notice the flag, then check that
    // submits are refused during the drain.
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
    c.send(submit_line("late", spec));
    const std::optional<json_value> refused = c.read_frame("error", 10.0);
    ASSERT_TRUE(refused.has_value());
    EXPECT_NE(refused->at("error").as_string().find("draining"), std::string::npos);

    // After drain_grace_s the stalled request is checkpointed, its error
    // frame names the resume path, and run_server returns cleanly.
    const std::optional<json_value> checkpointed = c.read_frame("error", 60.0);
    ASSERT_TRUE(checkpointed.has_value());
    EXPECT_NE(checkpointed->at("error").as_string().find("draining"),
              std::string::npos);
    EXPECT_NE(checkpointed->at("error").as_string().find("--resume"),
              std::string::npos);

    fx.stop();
    EXPECT_TRUE(fx.summary.drained);
    EXPECT_EQ(fx.summary.cancelled, 1u);
}

TEST(serve_e2e, injected_client_drop_does_not_hurt_the_server)
{
    const farm::campaign_spec spec = small_campaign();
    serve_fixture fx("chaosdrop");
    // Connection serial 1 is hard-closed by the server right after its
    // first streamed point frame.
    const fault_env env("client-drop:1");
    fx.start();
    client dropped(fx);
    dropped.send(submit_line("victim", spec));
    ASSERT_TRUE(dropped.read_frame("ack").has_value());
    // The drop closes the socket mid-stream: read_line hits EOF.
    while (dropped.read_line(120.0).has_value()) { }

    client other(fx);
    other.send("{\"op\":\"ping\"}\n");
    EXPECT_TRUE(other.read_frame("pong", 10.0).has_value());

    fx.stop();
    EXPECT_EQ(fx.summary.accepted, 1u);
}

} // namespace
