// AC small-signal analysis against closed-form network responses.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "numeric/interpolation.h"
#include "spice/ac_analysis.h"
#include "spice/circuit.h"
#include "spice/dc_analysis.h"
#include "spice/devices/controlled.h"
#include "spice/devices/mosfet.h"
#include "spice/devices/passive.h"
#include "spice/devices/sources.h"

namespace {

using namespace acstab;
using namespace acstab::spice;

struct rc_fixture {
    circuit c;
    real r = 1e3;
    real cap = 1e-9;
    rc_fixture()
    {
        const node_id in = c.node("in");
        const node_id out = c.node("out");
        c.add<vsource>("vin", in, ground_node, waveform_spec::make_ac(0.0, 1.0));
        c.add<resistor>("r1", in, out, r);
        c.add<capacitor>("c1", out, ground_node, cap);
    }
};

TEST(ac, rc_lowpass_magnitude_and_phase)
{
    rc_fixture f;
    const dc_result op = dc_operating_point(f.c);
    const std::vector<real> freqs = numeric::log_space(1e3, 1e8, 60);
    const ac_result res = ac_sweep(f.c, freqs, op.solution);
    const std::vector<cplx> vout = node_response(f.c, res, "out");
    const real fc = 1.0 / (two_pi * f.r * f.cap); // ~159 kHz
    for (std::size_t i = 0; i < freqs.size(); ++i) {
        const real ratio = freqs[i] / fc;
        const real mag_expected = 1.0 / std::sqrt(1.0 + ratio * ratio);
        const real ph_expected = -std::atan(ratio);
        EXPECT_NEAR(std::abs(vout[i]), mag_expected, 1e-9) << "f=" << freqs[i];
        EXPECT_NEAR(std::arg(vout[i]), ph_expected, 1e-9) << "f=" << freqs[i];
    }
}

TEST(ac, rlc_series_resonance)
{
    circuit c;
    const node_id in = c.node("in");
    const node_id m = c.node("m");
    const node_id out = c.node("out");
    const real r = 50.0;
    const real l = 1e-6;
    const real cap = 1e-9;
    c.add<vsource>("vin", in, ground_node, waveform_spec::make_ac(0.0, 1.0));
    c.add<resistor>("r1", in, m, r);
    c.add<inductor>("l1", m, out, l);
    c.add<capacitor>("c1", out, ground_node, cap);
    const dc_result op = dc_operating_point(c);

    const real f0 = 1.0 / (two_pi * std::sqrt(l * cap)); // ~5.03 MHz
    const ac_result res = ac_sweep(c, {f0}, op.solution);
    const std::vector<cplx> vout = node_response(c, res, "out");
    // At resonance the cap voltage is Q times the drive, -90 degrees.
    const real q = std::sqrt(l / cap) / r;
    EXPECT_NEAR(std::abs(vout[0]), q, q * 1e-6);
    EXPECT_NEAR(std::arg(vout[0]), -pi / 2.0, 1e-6);
}

TEST(ac, inductor_branch_current)
{
    // A series resistor keeps the DC system nonsingular (an ideal source
    // directly across an ideal inductor has an indeterminate DC current).
    circuit c;
    const node_id in = c.node("in");
    const node_id m = c.node("m");
    const real r = 10.0;
    const real l = 1e-3;
    c.add<vsource>("vin", in, ground_node, waveform_spec::make_ac(0.0, 1.0));
    c.add<resistor>("r1", in, m, r);
    auto& l1 = c.add<inductor>("l1", m, ground_node, l);
    const dc_result op = dc_operating_point(c);
    const real f = 1e3;
    const ac_result res = ac_sweep(c, {f}, op.solution);
    const cplx il = res.solution[0][static_cast<std::size_t>(l1.branch())];
    const cplx expected = cplx{1.0, 0.0} / cplx{r, to_omega(f) * l};
    EXPECT_LT(std::abs(il - expected), 1e-9);
}

TEST(ac, vccs_amplifier_gain)
{
    circuit c;
    const node_id in = c.node("in");
    const node_id out = c.node("out");
    c.add<vsource>("vin", in, ground_node, waveform_spec::make_ac(0.0, 1.0));
    c.add<vccs>("gm", ground_node, out, in, ground_node, 2e-3);
    c.add<resistor>("rl", out, ground_node, 5e3);
    const dc_result op = dc_operating_point(c);
    const ac_result res = ac_sweep(c, {1e4}, op.solution);
    EXPECT_NEAR(std::abs(node_response(c, res, "out")[0]), 10.0, 1e-9);
}

TEST(ac, exclusive_source_zeroes_others)
{
    circuit c;
    const node_id a = c.node("a");
    const node_id b = c.node("b");
    c.add<vsource>("v1", a, ground_node, waveform_spec::make_ac(0.0, 1.0));
    c.add<resistor>("r1", a, ground_node, 1e3);
    auto& i2 = c.add<isource>("i2", ground_node, b, waveform_spec::make_ac(0.0, 1.0));
    c.add<resistor>("r2", b, ground_node, 1e3);
    const dc_result op = dc_operating_point(c);

    ac_options opt;
    opt.exclusive_source = &i2;
    const ac_result res = ac_sweep(c, {1e3}, op.solution, opt);
    // v1 is AC-zeroed: node a silent; i2's 1 A into 1 kOhm gives 1 kV.
    EXPECT_NEAR(std::abs(node_response(c, res, "a")[0]), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(node_response(c, res, "b")[0]), 1e3, 1e-6);
}

TEST(ac, zero_all_sources_flag)
{
    circuit c;
    const node_id a = c.node("a");
    c.add<vsource>("v1", a, ground_node, waveform_spec::make_ac(0.0, 1.0));
    c.add<resistor>("r1", a, ground_node, 1e3);
    const dc_result op = dc_operating_point(c);

    const std::size_t n = c.unknown_count();
    ac_params p;
    p.omega = to_omega(1e3);
    p.zero_all_sources = true;
    system_builder<cplx> b(n);
    for (const auto& dev : c.devices())
        dev->stamp_ac(op.solution, p, b);
    for (const cplx& v : b.rhs())
        EXPECT_EQ(v, (cplx{0.0, 0.0}));
}

TEST(ac, mos_common_source_gain_matches_small_signal)
{
    circuit c;
    const node_id vdd = c.node("vdd");
    const node_id g = c.node("g");
    const node_id d = c.node("d");
    c.add<vsource>("vdd_s", vdd, ground_node, 5.0);
    c.add<vsource>("vg", g, ground_node, waveform_spec::make_ac(1.2, 1.0));
    mosfet_model nm;
    nm.vto = 0.7;
    nm.kp = 100e-6;
    nm.lambda = 0.0;
    nm.gamma = 0.0;
    nm.cox = 0.0; // no caps: flat response
    auto& m1 = c.add<mosfet>("m1", d, g, ground_node, ground_node, nm, 20e-6, 2e-6);
    const real rd = 10e3;
    c.add<resistor>("rd", vdd, d, rd);
    const dc_result op = dc_operating_point(c);

    const mosfet_small_signal ss = m1.small_signal(op.solution);
    ASSERT_EQ(ss.region, 2); // saturation
    const ac_result res = ac_sweep(c, {1e4}, op.solution);
    const real gain = std::abs(node_response(c, res, "d")[0]);
    EXPECT_NEAR(gain, ss.gm * rd, ss.gm * rd * 1e-6);
}

TEST(ac, gshunt_regularizes_floating_node)
{
    circuit c;
    const node_id a = c.node("a");
    const node_id fl = c.node("fl");
    c.add<isource>("i1", ground_node, a, waveform_spec::make_ac(0.0, 1.0));
    c.add<resistor>("r1", a, ground_node, 1e3);
    c.add<capacitor>("cx", fl, ground_node, 1e-12); // floating island
    dc_options dopt;
    const dc_result op = dc_operating_point(c, dopt);

    ac_options opt;
    opt.gshunt = 1e-9;
    const ac_result res = ac_sweep(c, {1e6}, op.solution, opt);
    EXPECT_NEAR(std::abs(node_response(c, res, "a")[0]), 1e3, 1.0);
}

TEST(ac, rejects_bad_inputs)
{
    rc_fixture f;
    const dc_result op = dc_operating_point(f.c);
    EXPECT_THROW(ac_sweep(f.c, {}, op.solution), analysis_error);
    EXPECT_THROW(ac_sweep(f.c, {-1.0}, op.solution), analysis_error);
    std::vector<real> wrong_op(op.solution.size() + 1, 0.0);
    EXPECT_THROW(ac_sweep(f.c, {1e3}, wrong_op), analysis_error);
}

} // namespace
