// Parameterized re-analysis (in-tool sweeps).
#include <gtest/gtest.h>

#include "circuits/bias.h"
#include "circuits/rlc.h"
#include "core/sweeps.h"
#include "spice/devices/passive.h"
#include "spice/devices/sources.h"

namespace {

using namespace acstab;

TEST(sweeps, tank_damping_sweep_tracks_parameter)
{
    core::stability_options opt;
    opt.sweep.fstart = 1e4;
    opt.sweep.fstop = 1e8;
    opt.sweep.points_per_decade = 50;
    const auto points = core::sweep_stability(
        [](spice::circuit& c, real zeta) {
            circuits::add_parallel_rlc_tank(c, "tank", zeta, 1e6);
            return std::string("tank");
        },
        {0.1, 0.2, 0.4}, opt);
    ASSERT_EQ(points.size(), 3u);
    for (std::size_t i = 0; i < points.size(); ++i) {
        ASSERT_TRUE(points[i].dc_converged);
        ASSERT_TRUE(points[i].node.has_peak);
        EXPECT_NEAR(points[i].node.zeta, points[i].parameter, 0.15 * points[i].parameter);
    }
    const std::string table = core::format_sweep(points, "zeta");
    EXPECT_NE(table.find("zeta"), std::string::npos);
    EXPECT_NE(table.find("1MHz"), std::string::npos);
}

TEST(sweeps, bias_temperature_sweep_keeps_loop_in_band)
{
    // The zero-TC reference's local loop must stay in the tens of MHz and
    // under-damped across the industrial temperature range.
    const auto points = core::sweep_stability(
        [](spice::circuit& c, real temp) {
            circuits::bias_params bp;
            bp.temp_celsius = temp;
            const circuits::bias_nodes n = circuits::build_standalone_bias(c, bp);
            return n.rail;
        },
        {-40.0, 27.0, 125.0});
    for (const auto& p : points) {
        ASSERT_TRUE(p.dc_converged) << "T=" << p.parameter;
        ASSERT_TRUE(p.node.has_peak) << "T=" << p.parameter;
        EXPECT_GT(p.node.dominant.freq_hz, 2e7) << "T=" << p.parameter;
        EXPECT_LT(p.node.dominant.freq_hz, 1.2e8) << "T=" << p.parameter;
        EXPECT_LT(p.node.zeta, 0.7) << "T=" << p.parameter;
    }
}

TEST(sweeps, reports_non_convergence_instead_of_throwing)
{
    const auto points = core::sweep_stability(
        [](spice::circuit& c, real) {
            // Pathological: vsource loop with an inductor -> singular DC.
            const auto a = c.node("a");
            c.add<spice::vsource>("v1", a, spice::ground_node,
                                  spice::waveform_spec::make_ac(0.0, 1.0));
            c.add<spice::inductor>("l1", a, spice::ground_node, 1e-3);
            return std::string("a");
        },
        {1.0});
    ASSERT_EQ(points.size(), 1u);
    EXPECT_FALSE(points[0].dc_converged);
    EXPECT_EQ(points[0].status, core::point_status::dc_failed);
    const std::string table = core::format_sweep(points, "p");
    EXPECT_NE(table.find("DC did not converge"), std::string::npos);
}

TEST(sweeps, records_analysis_errors_per_point_instead_of_throwing)
{
    // One point of the sweep is pathological in a way that is NOT a DC
    // convergence failure (a zero-valued resistor is rejected when the
    // device is constructed); it must be recorded, not kill the sweep.
    const auto points = core::sweep_stability(
        [](spice::circuit& c, real r) {
            circuits::add_parallel_rlc_tank(c, "tank", 0.2, 1e6);
            if (r <= 0.0) {
                c.remove_device("r_tank");
                c.add<spice::resistor>("r_tank", *c.find_node("tank"),
                                       spice::ground_node, r);
            }
            return std::string("tank");
        },
        {1.0, 0.0, 2.0});
    ASSERT_EQ(points.size(), 3u);
    EXPECT_EQ(points[0].status, core::point_status::ok);
    EXPECT_EQ(points[1].status, core::point_status::analysis_failed);
    EXPECT_TRUE(points[1].dc_converged); // legacy flag tracks DC only
    EXPECT_FALSE(points[1].error.empty());
    EXPECT_EQ(points[2].status, core::point_status::ok);
    EXPECT_TRUE(points[2].node.has_peak);

    const std::string table = core::format_sweep(points, "r");
    EXPECT_NE(table.find("analysis failed"), std::string::npos);
}

TEST(sweeps, format_sweep_renders_mixed_statuses)
{
    std::vector<core::sweep_point_result> points(3);
    points[0].parameter = 1.0;
    points[0].node.has_peak = true;
    points[0].node.dominant.freq_hz = 1e6;
    points[0].node.dominant.value = -25.0;
    points[0].node.zeta = 0.2;
    points[0].node.phase_margin_est_deg = 20.0;
    points[1].parameter = 2.0;
    points[1].status = core::point_status::dc_failed;
    points[1].dc_converged = false;
    points[2].parameter = 3.0;
    points[2].status = core::point_status::analysis_failed;
    points[2].error = "numeric: singular matrix";

    const std::string table = core::format_sweep(points, "corner");
    EXPECT_NE(table.find("corner"), std::string::npos);
    EXPECT_NE(table.find("1MHz"), std::string::npos);
    EXPECT_NE(table.find("DC did not converge"), std::string::npos);
    EXPECT_NE(table.find("analysis failed: numeric: singular matrix"), std::string::npos);
}

TEST(sweeps, grid_runner_slices_match_full_run)
{
    core::param_grid grid;
    grid.axes = {{"zeta", {0.1, 0.2, 0.3, 0.4, 0.5}}};
    const core::grid_circuit_factory factory
        = [](spice::circuit& c, const core::grid_point& pt) {
              circuits::add_parallel_rlc_tank(c, "tank", pt.overrides.at("zeta"), 1e6);
              return std::string("tank");
          };
    core::stability_options opt;
    opt.sweep.fstart = 1e4;
    opt.sweep.fstop = 1e8;

    const auto full = core::sweep_stability_grid(factory, grid, opt);
    ASSERT_EQ(full.size(), 5u);
    const auto tail = core::sweep_stability_grid(factory, grid, 3, 5, opt);
    ASSERT_EQ(tail.size(), 2u);
    for (std::size_t i = 0; i < tail.size(); ++i) {
        EXPECT_EQ(tail[i].point.index, 3 + i);
        ASSERT_EQ(tail[i].status, core::point_status::ok);
        EXPECT_DOUBLE_EQ(tail[i].node.zeta, full[3 + i].node.zeta);
    }
    EXPECT_THROW((void)core::sweep_stability_grid(factory, grid, 4, 6, opt),
                 analysis_error);
}

TEST(sweeps, template_overload_rebuilds_from_netlist_text)
{
    core::circuit_template tmpl;
    tmpl.text = R"(* tank template
.param rval=397.887
r1 tank 0 {rval}
l1 tank 0 25.3303u
c1 tank 0 1n
.end
)";
    core::param_grid grid;
    grid.axes = {{"rval", {198.94, 397.887}}}; // zeta = 0.4, 0.2
    core::stability_options opt;
    opt.sweep.fstart = 1e4;
    opt.sweep.fstop = 1e8;
    const auto points = core::sweep_stability_grid(tmpl, "tank", grid, opt);
    ASSERT_EQ(points.size(), 2u);
    ASSERT_EQ(points[0].status, core::point_status::ok);
    ASSERT_EQ(points[1].status, core::point_status::ok);
    EXPECT_NEAR(points[0].node.zeta, 0.4, 0.06);
    EXPECT_NEAR(points[1].node.zeta, 0.2, 0.03);
}

} // namespace
