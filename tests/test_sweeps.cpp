// Parameterized re-analysis (in-tool sweeps).
#include <gtest/gtest.h>

#include "circuits/bias.h"
#include "circuits/rlc.h"
#include "core/sweeps.h"
#include "spice/devices/passive.h"
#include "spice/devices/sources.h"

namespace {

using namespace acstab;

TEST(sweeps, tank_damping_sweep_tracks_parameter)
{
    core::stability_options opt;
    opt.sweep.fstart = 1e4;
    opt.sweep.fstop = 1e8;
    opt.sweep.points_per_decade = 50;
    const auto points = core::sweep_stability(
        [](spice::circuit& c, real zeta) {
            circuits::add_parallel_rlc_tank(c, "tank", zeta, 1e6);
            return std::string("tank");
        },
        {0.1, 0.2, 0.4}, opt);
    ASSERT_EQ(points.size(), 3u);
    for (std::size_t i = 0; i < points.size(); ++i) {
        ASSERT_TRUE(points[i].dc_converged);
        ASSERT_TRUE(points[i].node.has_peak);
        EXPECT_NEAR(points[i].node.zeta, points[i].parameter, 0.15 * points[i].parameter);
    }
    const std::string table = core::format_sweep(points, "zeta");
    EXPECT_NE(table.find("zeta"), std::string::npos);
    EXPECT_NE(table.find("1MHz"), std::string::npos);
}

TEST(sweeps, bias_temperature_sweep_keeps_loop_in_band)
{
    // The zero-TC reference's local loop must stay in the tens of MHz and
    // under-damped across the industrial temperature range.
    const auto points = core::sweep_stability(
        [](spice::circuit& c, real temp) {
            circuits::bias_params bp;
            bp.temp_celsius = temp;
            const circuits::bias_nodes n = circuits::build_standalone_bias(c, bp);
            return n.rail;
        },
        {-40.0, 27.0, 125.0});
    for (const auto& p : points) {
        ASSERT_TRUE(p.dc_converged) << "T=" << p.parameter;
        ASSERT_TRUE(p.node.has_peak) << "T=" << p.parameter;
        EXPECT_GT(p.node.dominant.freq_hz, 2e7) << "T=" << p.parameter;
        EXPECT_LT(p.node.dominant.freq_hz, 1.2e8) << "T=" << p.parameter;
        EXPECT_LT(p.node.zeta, 0.7) << "T=" << p.parameter;
    }
}

TEST(sweeps, reports_non_convergence_instead_of_throwing)
{
    const auto points = core::sweep_stability(
        [](spice::circuit& c, real) {
            // Pathological: vsource loop with an inductor -> singular DC.
            const auto a = c.node("a");
            c.add<spice::vsource>("v1", a, spice::ground_node,
                                  spice::waveform_spec::make_ac(0.0, 1.0));
            c.add<spice::inductor>("l1", a, spice::ground_node, 1e-3);
            return std::string("a");
        },
        {1.0});
    ASSERT_EQ(points.size(), 1u);
    EXPECT_FALSE(points[0].dc_converged);
    const std::string table = core::format_sweep(points, "p");
    EXPECT_NE(table.find("DC did not converge"), std::string::npos);
}

} // namespace
