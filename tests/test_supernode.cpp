// Supernodal blocked numeric path: detection invariants on hand-built
// patterns, blocked-vs-column refactor/solve equivalence on real
// snapshots, and panel adoption from seed values. The engine-level
// equivalence across netlists/threads lives in test_solver_modes.cpp;
// these tests pin the numeric layer in isolation.
#include <gtest/gtest.h>

#include <complex>
#include <memory>
#include <random>
#include <vector>

#include "circuits/opamp.h"
#include "circuits/rlc.h"
#include "engine/linearized_snapshot.h"
#include "numeric/sparse_factor.h"
#include "numeric/supernode.h"
#include "spice/dc_analysis.h"

namespace {

using namespace acstab;
using numeric::supernode_partition;

// --- detection on hand-built patterns ---------------------------------------

/// Build lcol_ptr/lrow from per-column row lists.
struct pattern {
    std::vector<std::size_t> col_ptr{0};
    std::vector<std::size_t> rows;
    void add(std::initializer_list<std::size_t> col)
    {
        rows.insert(rows.end(), col.begin(), col.end());
        col_ptr.push_back(rows.size());
    }
};

TEST(supernode_detect, dense_block_is_one_supernode)
{
    // 4 columns, fully nested: P(0)={1,2,3}, P(1)={2,3}, P(2)={3}, P(3)={}.
    pattern p;
    p.add({1, 2, 3});
    p.add({2, 3});
    p.add({3});
    p.add({});
    const supernode_partition sn = numeric::detect_supernodes(4, p.col_ptr, p.rows);
    ASSERT_EQ(sn.count(), 1u);
    EXPECT_EQ(sn.width(0), 4u);
    EXPECT_EQ(sn.sub_rows(0), 0u);
    for (std::size_t k = 0; k < 4; ++k)
        EXPECT_EQ(sn.col_super[k], 0u);
}

TEST(supernode_detect, diagonal_matrix_is_all_singletons_when_strict)
{
    // Strict detection (relaxation off): nothing nests, five singletons.
    pattern p;
    for (int k = 0; k < 5; ++k)
        p.add({});
    const supernode_partition sn = numeric::detect_supernodes(5, p.col_ptr, p.rows, 32, 0, 0.0);
    ASSERT_EQ(sn.count(), 5u);
    for (std::size_t s = 0; s < 5; ++s) {
        EXPECT_EQ(sn.width(s), 1u);
        EXPECT_EQ(sn.sub_rows(s), 0u);
    }
}

TEST(supernode_detect, nested_with_shared_sub_rows)
{
    // Columns 0-1 share sub-rows {4,6} (P(0) = {1,4,6}, P(1) = {4,6});
    // column 2 breaks the run (pattern not nested in P(1)).
    pattern p;
    p.add({1, 6, 4}); // unsorted on purpose: detection must not rely on order
    p.add({4, 6});
    p.add({5});
    p.add({6, 4});
    p.add({6});
    p.add({6});
    p.add({});
    const supernode_partition sn = numeric::detect_supernodes(7, p.col_ptr, p.rows, 32, 0, 0.0);
    ASSERT_GE(sn.count(), 3u);
    EXPECT_EQ(sn.first[0], 0u);
    EXPECT_EQ(sn.width(0), 2u);
    ASSERT_EQ(sn.sub_rows(0), 2u);
    // Shared sub-row pattern is the LAST column's, sorted ascending.
    EXPECT_EQ(sn.rows[sn.row_ptr[0]], 4u);
    EXPECT_EQ(sn.rows[sn.row_ptr[0] + 1], 6u);
    EXPECT_EQ(sn.col_super[0], 0u);
    EXPECT_EQ(sn.col_super[1], 0u);
    EXPECT_NE(sn.col_super[2], 0u);
}

TEST(supernode_detect, width_cap_splits_runs)
{
    // 6 fully nested columns with a width cap of 2 -> three supernodes.
    pattern p;
    for (std::size_t k = 0; k < 6; ++k) {
        std::vector<std::size_t> col;
        for (std::size_t r = k + 1; r < 6; ++r)
            col.push_back(r);
        p.rows.insert(p.rows.end(), col.begin(), col.end());
        p.col_ptr.push_back(p.rows.size());
    }
    const supernode_partition sn = numeric::detect_supernodes(6, p.col_ptr, p.rows, 2);
    ASSERT_EQ(sn.count(), 3u);
    for (std::size_t s = 0; s < 3; ++s)
        EXPECT_EQ(sn.width(s), 2u);
    // The capped run's sub-rows are the NEXT block's pivot rows plus the
    // remainder: pattern of column 1 = {2,3,4,5}.
    EXPECT_EQ(sn.sub_rows(0), 4u);
}

TEST(supernode_detect, partition_covers_all_columns)
{
    // Random-ish nested/broken patterns must still partition 0..n-1 into
    // consecutive runs.
    pattern p;
    p.add({1, 2});
    p.add({2});
    p.add({3, 5});
    p.add({5, 4});
    p.add({5});
    p.add({});
    const supernode_partition sn = numeric::detect_supernodes(6, p.col_ptr, p.rows);
    ASSERT_GT(sn.count(), 0u);
    EXPECT_EQ(sn.first.front(), 0u);
    EXPECT_EQ(sn.first.back(), 6u);
    for (std::size_t s = 0; s < sn.count(); ++s) {
        EXPECT_LT(sn.first[s], sn.first[s + 1]);
        for (std::size_t k = sn.first[s]; k < sn.first[s + 1]; ++k)
            EXPECT_EQ(sn.col_super[k], s);
    }
}

// --- relaxed amalgamation ---------------------------------------------------

TEST(supernode_relax, merges_singletons_within_zero_budget)
{
    // Five empty-pattern singletons merge into one width-5 panel: the
    // merged lower triangle pads tri(5) = 10 zeros <= relax_zeros = 12.
    pattern p;
    for (int k = 0; k < 5; ++k)
        p.add({});
    const supernode_partition sn = numeric::detect_supernodes(5, p.col_ptr, p.rows);
    ASSERT_EQ(sn.count(), 1u);
    EXPECT_EQ(sn.width(0), 5u);
    EXPECT_EQ(sn.sub_rows(0), 0u);
    for (std::size_t k = 0; k < 5; ++k)
        EXPECT_EQ(sn.col_super[k], 0u);
}

TEST(supernode_relax, merged_pattern_is_sorted_union)
{
    // Columns 0 and 1 have disjoint sub-rows {2,4} and {3,4}: strict
    // detection keeps them apart, relaxation merges them (3 padded
    // zeros) and the shared pattern becomes the union {2,3,4}.
    pattern p;
    p.add({4, 2}); // unsorted on purpose
    p.add({3, 4});
    p.add({});
    p.add({});
    p.add({});
    const supernode_partition strict =
        numeric::detect_supernodes(5, p.col_ptr, p.rows, 32, 0, 0.0);
    EXPECT_NE(strict.col_super[0], strict.col_super[1]);

    const supernode_partition sn = numeric::detect_supernodes(5, p.col_ptr, p.rows, 2);
    EXPECT_EQ(sn.col_super[0], sn.col_super[1]);
    ASSERT_EQ(sn.width(0), 2u);
    const std::size_t b = sn.row_ptr[0];
    ASSERT_EQ(sn.sub_rows(0), 3u);
    EXPECT_EQ(sn.rows[b], 2u);
    EXPECT_EQ(sn.rows[b + 1], 3u);
    EXPECT_EQ(sn.rows[b + 2], 4u);
}

TEST(supernode_relax, merges_respect_width_cap)
{
    // With max_width = 2 the diagonal matrix merges pairwise only.
    pattern p;
    for (int k = 0; k < 5; ++k)
        p.add({});
    const supernode_partition sn = numeric::detect_supernodes(5, p.col_ptr, p.rows, 2);
    ASSERT_EQ(sn.count(), 3u);
    for (std::size_t s = 0; s < sn.count(); ++s)
        EXPECT_LE(sn.width(s), 2u);
    EXPECT_EQ(sn.first.back(), 5u);
}

// --- blocked vs column equivalence on real snapshots ------------------------

[[nodiscard]] real max_rel_err(const std::vector<cplx>& a, const std::vector<cplx>& b)
{
    real worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const real mag = std::max(std::abs(a[i]), std::abs(b[i]));
        if (mag > 1e-30)
            worst = std::max(worst, std::abs(a[i] - b[i]) / mag);
    }
    return worst;
}

void expect_blocked_matches_column(spice::circuit& c, numeric::column_ordering ordering,
                                   std::size_t nrhs)
{
    const spice::dc_result op = spice::dc_operating_point(c);
    const engine::linearized_snapshot snap(c, op.solution, {});
    const std::size_t n = snap.size();

    numeric::csc_matrix<cplx> work = snap.make_workspace();
    snap.assemble(to_omega(1.3e5), work);
    numeric::lu_options sopt;
    sopt.ordering = ordering;
    const auto sym = std::make_shared<const numeric::symbolic_lu<cplx>>(work, sopt);

    numeric::numeric_lu<cplx> col(sym);
    col.set_batch_kernel(numeric::batch_kernel::simd);
    numeric::numeric_lu<cplx> blk(sym);
    blk.set_batch_kernel(numeric::batch_kernel::simd);
    blk.set_supernodal(true);

    // Refactor at a different frequency than the symbolic seed so both
    // paths do real work, twice to exercise panel reuse.
    for (const real f : {7.7e4, 2.9e6}) {
        snap.assemble(to_omega(f), work);
        col.refactor(work);
        blk.refactor(work);
    }

    std::mt19937 rng(123);
    std::uniform_real_distribution<real> dist(-1.0, 1.0);
    std::vector<std::vector<cplx>> batch(nrhs, std::vector<cplx>(n, cplx{}));
    for (std::size_t r = 0; r < nrhs; ++r) {
        if (r % 2 == 0) {
            batch[r][(r * 7) % n] = cplx{1.0, 0.0}; // sparse injection
        } else {
            for (std::size_t i = 0; i < n; ++i)
                batch[r][i] = cplx{dist(rng), dist(rng)};
        }
    }
    std::vector<const cplx*> cols;
    for (const auto& rhs : batch)
        cols.push_back(rhs.data());
    std::vector<cplx> xc(n * nrhs);
    std::vector<cplx> xb(n * nrhs);
    col.solve_batch(cols.data(), nrhs, xc.data());
    blk.solve_batch(cols.data(), nrhs, xb.data());
    EXPECT_LT(max_rel_err(xc, xb), 1e-12);

    // The growth witnesses agree too (both maintain the CSC values).
    EXPECT_NEAR(col.growth(), blk.growth(), 1e-9 * std::max(1.0, col.growth()));
}

TEST(supernode_numeric, blocked_matches_column_on_ladder)
{
    spice::circuit c;
    circuits::build_rc_ladder(c, 64);
    expect_blocked_matches_column(c, numeric::column_ordering::amd_approx, 8);
}

TEST(supernode_numeric, blocked_matches_column_on_opamp)
{
    spice::circuit c;
    circuits::build_opamp_buffer(c);
    expect_blocked_matches_column(c, numeric::column_ordering::amd, 5);
}

TEST(supernode_numeric, blocked_matches_column_under_natural_order)
{
    // Natural order keeps wide nested patterns (banded), a good stress
    // of multi-column supernodes with in-block U runs.
    spice::circuit c;
    circuits::build_rc_ladder(c, 48);
    expect_blocked_matches_column(c, numeric::column_ordering::none, 6);
}

TEST(supernode_numeric, seed_adoption_loads_panels)
{
    // set_supernodal on a seed-adopted factorization must serve blocked
    // solves without any refactor.
    spice::circuit c;
    circuits::build_rc_ladder(c, 40);
    const spice::dc_result op = spice::dc_operating_point(c);
    const engine::linearized_snapshot snap(c, op.solution, {});
    const std::size_t n = snap.size();

    numeric::csc_matrix<cplx> work = snap.make_workspace();
    snap.assemble(to_omega(5.0e5), work);
    numeric::symbolic_lu<cplx>::factor_values seed;
    const auto sym = std::make_shared<const numeric::symbolic_lu<cplx>>(
        work, numeric::lu_options{}, &seed);
    numeric::numeric_lu<cplx> blk(sym, std::move(seed));
    blk.set_batch_kernel(numeric::batch_kernel::simd);
    blk.set_supernodal(true);

    numeric::numeric_lu<cplx> col(sym);
    col.refactor(work);

    std::vector<std::vector<cplx>> batch(4, std::vector<cplx>(n, cplx{}));
    for (std::size_t r = 0; r < 4; ++r)
        batch[r][r] = cplx{1.0, 0.0};
    std::vector<const cplx*> cols;
    for (const auto& rhs : batch)
        cols.push_back(rhs.data());
    std::vector<cplx> xc(n * 4);
    std::vector<cplx> xb(n * 4);
    col.solve_batch(cols.data(), 4, xc.data());
    blk.solve_batch(cols.data(), 4, xb.data());
    EXPECT_LT(max_rel_err(xc, xb), 1e-12);
}

} // namespace
