// Solver-mode equivalence: the ordering / SIMD-kernel / supernodal /
// warm-start axes of engine::solver_tuning are performance knobs, never
// answer knobs. Every shipped netlist must produce the same verdicts
// (margins within tolerance, farm reports byte-identical) under
// amd-approx/amd/count/none ordering, SIMD/scalar kernels and
// blocked/column numeric paths at 1 and 4 threads; classic warm-started
// sweeps must honor the cold path's backward-error contract and
// pipelined (lookahead) sweeps must be bit-identical to cold.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstddef>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "engine/linearized_snapshot.h"
#include "engine/sweep_engine.h"
#include "farm/campaign.h"
#include "farm/executor.h"
#include "gen/netlist_gen.h"
#include "numeric/interpolation.h"
#include "spice/dc_analysis.h"
#include "spice/parser/netlist_parser.h"

#ifndef ACSTAB_NETLIST_DIR
#define ACSTAB_NETLIST_DIR "netlists"
#endif

namespace {

using namespace acstab;

std::string netlist(const char* name)
{
    return std::string(ACSTAB_NETLIST_DIR) + "/" + name;
}

const char* const shipped[] = {"follower.sp", "rlc_tank.sp", "three_pole_loop.sp",
                               "two_pole_loop.sp"};

core::stability_report report_for(const char* name, engine::solver_tuning tuning,
                                  std::size_t threads)
{
    spice::parsed_netlist net = spice::parse_netlist_file(netlist(name));
    core::stability_options opt;
    opt.threads = threads;
    opt.tuning = tuning;
    core::stability_analyzer an(net.ckt, opt);
    return an.analyze_all_nodes();
}

void expect_equivalent(const core::stability_report& ref, const core::stability_report& got,
                       const std::string& label)
{
    ASSERT_EQ(got.nodes.size(), ref.nodes.size()) << label;
    ASSERT_EQ(got.skipped_nodes, ref.skipped_nodes) << label;
    for (std::size_t i = 0; i < ref.nodes.size(); ++i) {
        const core::node_stability& r = ref.nodes[i];
        // Reports sort nodes by natural frequency; nodes whose frequencies
        // agree to rounding may legally swap places between solver modes,
        // so match records by name rather than position.
        const auto match = std::find_if(got.nodes.begin(), got.nodes.end(),
                                        [&r](const core::node_stability& n) {
                                            return n.node == r.node;
                                        });
        ASSERT_NE(match, got.nodes.end()) << label << " node " << r.node;
        const core::node_stability& g = *match;
        ASSERT_EQ(g.has_peak, r.has_peak) << label << " node " << r.node;
        ASSERT_EQ(g.is_underdamped, r.is_underdamped) << label << " node " << r.node;
        if (!r.has_peak)
            continue;
        EXPECT_NEAR(g.dominant.freq_hz, r.dominant.freq_hz, 1e-6 * r.dominant.freq_hz)
            << label << " node " << r.node;
        EXPECT_NEAR(g.zeta, r.zeta, 1e-6 * std::max(r.zeta, real{1e-6}))
            << label << " node " << r.node;
        EXPECT_NEAR(g.phase_margin_est_deg, r.phase_margin_est_deg, 1e-3)
            << label << " node " << r.node;
    }
    ASSERT_EQ(got.loops.size(), ref.loops.size()) << label;
}

/// AMD vs count vs none orderings and SIMD vs scalar kernels on every
/// shipped netlist, each at 1 and 4 threads, against the default-tuning
/// serial reference: identical verdicts, margins within tolerance.
TEST(solver_modes, ordering_and_kernel_equivalence_on_shipped_netlists)
{
    struct mode {
        const char* name;
        numeric::column_ordering ordering;
        bool simd;
        bool supernodal;
    };
    const mode modes[] = {
        {"amd", numeric::column_ordering::amd, true, true},
        {"count", numeric::column_ordering::count, true, true},
        {"none", numeric::column_ordering::none, true, true},
        {"amd-scalar", numeric::column_ordering::amd, false, true},
        {"amd-approx-column", numeric::column_ordering::amd_approx, true, false},
        {"amd-column-scalar", numeric::column_ordering::amd, false, false},
    };

    for (const char* name : shipped) {
        const core::stability_report ref = report_for(name, {}, 1);
        for (const mode& m : modes)
            for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
                engine::solver_tuning tuning;
                tuning.ordering = m.ordering;
                tuning.simd = m.simd;
                tuning.supernodal = m.supernodal;
                expect_equivalent(ref, report_for(name, tuning, threads),
                                  std::string(name) + " " + m.name + " threads="
                                      + std::to_string(threads));
            }
    }
}

// ---- raw-engine agreement on a generated mesh ------------------------------

struct sweep_capture {
    std::vector<std::vector<std::vector<cplx>>> sol; ///< [fi][ri][unknown]
};

sweep_capture run_engine(const engine::linearized_snapshot& snap,
                         const std::vector<real>& freqs,
                         const std::vector<engine::sweep_engine::injection>& injections,
                         engine::solver_tuning tuning, std::size_t threads,
                         engine::sweep_stats* stats = nullptr)
{
    engine::sweep_engine_options opt;
    opt.threads = threads;
    opt.tuning = tuning;
    opt.stats = stats;
    const engine::sweep_engine eng(opt);
    sweep_capture cap;
    cap.sol.assign(freqs.size(),
                   std::vector<std::vector<cplx>>(injections.size(),
                                                  std::vector<cplx>(snap.size())));
    eng.run_injections(snap, freqs, injections,
                       [&cap](std::size_t fi, std::size_t ri, std::span<const cplx> s) {
                           cap.sol[fi][ri].assign(s.begin(), s.end());
                       });
    return cap;
}

real max_rel_diff(const sweep_capture& a, const sweep_capture& b)
{
    real scale = 0.0;
    for (const auto& per_freq : a.sol)
        for (const auto& col : per_freq)
            for (const cplx& v : col)
                scale = std::max(scale, std::abs(v));
    real diff = 0.0;
    for (std::size_t fi = 0; fi < a.sol.size(); ++fi)
        for (std::size_t ri = 0; ri < a.sol[fi].size(); ++ri)
            for (std::size_t k = 0; k < a.sol[fi][ri].size(); ++k)
                diff = std::max(diff, std::abs(a.sol[fi][ri][k] - b.sol[fi][ri][k]));
    return diff / std::max(scale, real{1e-300});
}

engine::linearized_snapshot mesh_snapshot(spice::parsed_netlist& net, std::size_t size)
{
    gen::gen_options gopt;
    gopt.size = size;
    net = spice::parse_netlist(gen::rcmesh_netlist(gopt));
    net.ckt.finalize();
    const std::vector<real> op = spice::dc_operating_point(net.ckt).solution;
    engine::snapshot_options sopt;
    sopt.zero_all_sources = true;
    return engine::linearized_snapshot(net.ckt, op, sopt);
}

TEST(solver_modes, simd_and_scalar_kernels_agree_on_generated_mesh)
{
    spice::parsed_netlist net;
    const engine::linearized_snapshot snap = mesh_snapshot(net, 64);
    const std::vector<real> freqs = numeric::log_grid(1e4, 1e7, 12);
    std::vector<engine::sweep_engine::injection> injections;
    for (std::size_t k = 0; k < snap.size(); ++k)
        injections.push_back({k, cplx{1.0, 0.0}});

    engine::solver_tuning simd_on;
    engine::solver_tuning simd_off;
    simd_off.simd = false;
    const sweep_capture ref = run_engine(snap, freqs, injections, simd_off, 1);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        const sweep_capture simd = run_engine(snap, freqs, injections, simd_on, threads);
        EXPECT_LE(max_rel_diff(ref, simd), 1e-12) << "threads=" << threads;
    }
}

/// The supernodal/blocked numeric path against the column-at-a-time
/// reference on a generated mesh (the fill-heavy case where supernodes
/// actually get wide), at 1 and 4 threads: answers agree to 1e-12.
TEST(solver_modes, supernodal_and_column_paths_agree_on_generated_mesh)
{
    spice::parsed_netlist net;
    const engine::linearized_snapshot snap = mesh_snapshot(net, 144);
    const std::vector<real> freqs = numeric::log_grid(1e4, 1e7, 12);
    std::vector<engine::sweep_engine::injection> injections;
    for (std::size_t k = 0; k < snap.size(); k += 5)
        injections.push_back({k, cplx{1.0, 0.0}});

    engine::solver_tuning column;
    column.supernodal = false;
    engine::solver_tuning blocked; // default: supernodal on
    const sweep_capture ref = run_engine(snap, freqs, injections, column, 1);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        const sweep_capture blk = run_engine(snap, freqs, injections, blocked, threads);
        EXPECT_LE(max_rel_diff(ref, blk), 1e-12) << "threads=" << threads;
    }
}

/// Warm-started sweeps on a frequency grid inside the eligibility window
/// must (a) actually adopt stale factors, (b) agree with the cold sweep,
/// and (c) leave every solution inside the cold path's backward-error
/// contract: max|b - Yx| <= refactor_guard_tol * (max|Y| max|x| + max|b|).
TEST(solver_modes, warm_start_agrees_with_cold_and_honors_backward_error_contract)
{
    spice::parsed_netlist net;
    const engine::linearized_snapshot snap = mesh_snapshot(net, 100);
    // 40 points/decade: step ratio 1.059 < warm_ratio_limit 1.1, so the
    // serial sweep alternates cold anchors and warm-started points.
    const std::vector<real> freqs = numeric::log_grid(1e5, 1e6, 40);
    std::vector<engine::sweep_engine::injection> injections;
    for (std::size_t k = 0; k < snap.size(); k += 13)
        injections.push_back({k, cplx{1.0, 0.0}});

    engine::solver_tuning cold;
    engine::solver_tuning warm;
    warm.warm_start = true;
    engine::sweep_stats stats;
    const sweep_capture cref = run_engine(snap, freqs, injections, cold, 1);
    const sweep_capture wres = run_engine(snap, freqs, injections, warm, 1, &stats);

    EXPECT_GT(stats.warm_accepts.load(), 0u);
    EXPECT_GT(stats.warm_refinements.load(), 0u);
    EXPECT_EQ(stats.cold_factors.load() + stats.warm_accepts.load(), freqs.size());
    // Both paths satisfy a 1e-10 backward-error contract; the forward
    // difference additionally carries the system's condition number.
    EXPECT_LE(max_rel_diff(cref, wres), 1e-6);

    const real guard_tol = engine::sweep_engine_options{}.refactor_guard_tol;
    numeric::csc_matrix<cplx> work = snap.make_workspace();
    std::vector<cplx> y(snap.size());
    for (std::size_t fi = 0; fi < freqs.size(); ++fi) {
        snap.assemble(to_omega(freqs[fi]), work);
        real ymax = 0.0;
        for (const cplx& v : work.values())
            ymax = std::max(ymax, std::abs(v));
        for (std::size_t ri = 0; ri < injections.size(); ++ri) {
            const std::vector<cplx>& x = wres.sol[fi][ri];
            work.multiply_into(x.data(), y.data());
            real residual = 0.0;
            real xmax = 0.0;
            for (std::size_t i = 0; i < y.size(); ++i) {
                const cplx b = i == injections[ri].index ? cplx{1.0, 0.0} : cplx{};
                residual = std::max(residual, std::abs(b - y[i]));
                xmax = std::max(xmax, std::abs(x[i]));
            }
            EXPECT_LE(residual, guard_tol * (ymax * xmax + 1.0))
                << "f=" << freqs[fi] << " rhs=" << ri;
        }
    }
}

/// The pipelined warm start refactors the NEXT grid point concurrently
/// with this point's batched solves and adopts the finished factors when
/// it gets there. The adopted factors are computed from identically
/// assembled values and pass the cold guard, so — unlike the stale-
/// serving warm_start — the sweep must be BIT-IDENTICAL to cold, every
/// interior point must adopt, and no refinement is ever involved.
TEST(solver_modes, pipelined_warm_start_is_bit_identical_to_cold)
{
    spice::parsed_netlist net;
    const engine::linearized_snapshot snap = mesh_snapshot(net, 100);
    const std::vector<real> freqs = numeric::log_grid(1e5, 1e6, 40);
    std::vector<engine::sweep_engine::injection> injections;
    for (std::size_t k = 0; k < snap.size(); k += 13)
        injections.push_back({k, cplx{1.0, 0.0}});

    engine::solver_tuning cold;
    engine::solver_tuning piped;
    piped.warm_pipeline = true;
    engine::sweep_stats stats;
    const sweep_capture cref = run_engine(snap, freqs, injections, cold, 1);
    const sweep_capture pres = run_engine(snap, freqs, injections, piped, 1, &stats);

    // Serial sweep, one chunk: every point past the first adopts its
    // lookahead factors; every point still pays exactly one
    // refactorization (just off the critical path when a worker is free).
    EXPECT_EQ(stats.warm_accepts.load(), freqs.size() - 1);
    EXPECT_EQ(stats.warm_refinements.load(), 0u);
    EXPECT_EQ(stats.cold_factors.load(), freqs.size());
    EXPECT_EQ(max_rel_diff(cref, pres), 0.0);
}

/// Pipelined warm sweeps must also be safe (and still bit-identical)
/// when the shared pool actually has workers, several chunks pipeline at
/// once, and the lookahead tasks genuinely race the foreground solves.
TEST(solver_modes, pipelined_warm_start_is_bit_identical_at_four_threads)
{
    spice::parsed_netlist net;
    const engine::linearized_snapshot snap = mesh_snapshot(net, 100);
    const std::vector<real> freqs = numeric::log_grid(1e5, 1e6, 40);
    std::vector<engine::sweep_engine::injection> injections;
    for (std::size_t k = 0; k < snap.size(); k += 17)
        injections.push_back({k, cplx{1.0, 0.0}});

    engine::solver_tuning cold;
    engine::solver_tuning piped;
    piped.warm_pipeline = true;
    const sweep_capture cref = run_engine(snap, freqs, injections, cold, 1);
    const sweep_capture pres = run_engine(snap, freqs, injections, piped, 4);
    EXPECT_EQ(max_rel_diff(cref, pres), 0.0);
}

/// The adaptive analyzer path forwards the tuning too: warm-started
/// adaptive stability analysis reproduces the cold adaptive margins.
TEST(solver_modes, adaptive_analysis_warm_start_matches_cold)
{
    spice::parsed_netlist net = spice::parse_netlist_file(netlist("rlc_tank.sp"));
    core::stability_options opt;
    opt.sweep.fstart = 1e4;
    opt.sweep.fstop = 1e8;
    opt.adaptive = true;
    core::stability_analyzer cold_an(net.ckt, opt);
    const core::node_stability cold = cold_an.analyze_node("tank");

    opt.tuning.warm_start = true;
    core::stability_analyzer warm_an(net.ckt, opt);
    const core::node_stability warm = warm_an.analyze_node("tank");

    ASSERT_TRUE(cold.has_peak);
    ASSERT_TRUE(warm.has_peak);
    EXPECT_NEAR(warm.zeta, cold.zeta, 1e-3 * cold.zeta);
    EXPECT_NEAR(warm.dominant.freq_hz, cold.dominant.freq_hz, 1e-3 * cold.dominant.freq_hz);
    EXPECT_NEAR(warm.phase_margin_est_deg, cold.phase_margin_est_deg, 0.1);
}

// ---- farm-report byte identity ---------------------------------------------

farm::campaign_spec tank_campaign(engine::solver_tuning tuning)
{
    farm::campaign_spec spec;
    spec.netlist = netlist("rlc_tank.sp");
    spec.node = "tank";
    spec.fstart = 1e4;
    spec.fstop = 1e8;
    spec.points_per_decade = 40;
    spec.grid.temps = {0.0, 50.0};
    spec.tuning = tuning;
    return spec;
}

std::string farm_table(engine::solver_tuning tuning, std::size_t threads)
{
    const farm::campaign_spec spec = tank_campaign(tuning);
    const std::vector<farm::point_record> records = farm::run_shard(spec, 0, 1, threads);
    return farm::format_report(
        farm::merge_shards(spec, {farm::shard_to_json(spec, 0, 1, records)}));
}

/// Solver internals must not leak into reported results: the formatted
/// farm report of a small campaign is byte-identical across orderings,
/// kernels and point-level thread counts.
TEST(solver_modes, farm_reports_are_byte_identical_across_solver_modes)
{
    const std::string ref = farm_table({}, 1);
    EXPECT_NE(ref.find("corner-farm campaign report, node 'tank'"), std::string::npos);

    for (const numeric::column_ordering ordering :
         {numeric::column_ordering::none, numeric::column_ordering::count,
          numeric::column_ordering::amd, numeric::column_ordering::amd_approx})
        for (const bool simd : {false, true})
            for (const bool supernodal : {false, true})
                for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
                    engine::solver_tuning tuning;
                    tuning.ordering = ordering;
                    tuning.simd = simd;
                    tuning.supernodal = supernodal;
                    EXPECT_EQ(farm_table(tuning, threads), ref)
                        << "ordering=" << static_cast<int>(ordering) << " simd=" << simd
                        << " supernodal=" << supernodal << " threads=" << threads;
                }
}

/// The plan file pins the tuning: non-default knobs round-trip through
/// JSON, and a default-tuning plan keeps its pre-tuning bytes (no new
/// fields appear).
TEST(solver_modes, campaign_tuning_round_trips_and_default_plan_bytes_are_stable)
{
    const farm::campaign_spec plain = tank_campaign({});
    const std::string plain_bytes = farm::to_json(plain).dump();
    EXPECT_EQ(plain_bytes.find("\"order\""), std::string::npos);
    EXPECT_EQ(plain_bytes.find("\"simd\""), std::string::npos);
    EXPECT_EQ(plain_bytes.find("\"warm\""), std::string::npos);
    EXPECT_EQ(plain_bytes.find("\"supernodal\""), std::string::npos);
    EXPECT_EQ(plain_bytes.find("\"warm_pipeline\""), std::string::npos);

    engine::solver_tuning tuning;
    tuning.ordering = numeric::column_ordering::count;
    tuning.simd = false;
    tuning.warm_start = true;
    tuning.supernodal = false;
    tuning.warm_pipeline = true;
    const farm::campaign_spec spec = tank_campaign(tuning);
    const farm::campaign_spec back
        = farm::campaign_from_json(farm::json_value::parse(farm::to_json(spec).dump()));
    EXPECT_EQ(back.tuning.ordering, numeric::column_ordering::count);
    EXPECT_FALSE(back.tuning.simd);
    EXPECT_TRUE(back.tuning.warm_start);
    EXPECT_FALSE(back.tuning.supernodal);
    EXPECT_TRUE(back.tuning.warm_pipeline);
    EXPECT_EQ(farm::to_json(back).dump(), farm::to_json(spec).dump());

    // The non-default ordering name round-trips for the new variant too.
    engine::solver_tuning exact;
    exact.ordering = numeric::column_ordering::amd;
    const farm::campaign_spec espec = tank_campaign(exact);
    const std::string ebytes = farm::to_json(espec).dump();
    EXPECT_NE(ebytes.find("\"order\":\"amd\""), std::string::npos);
    const farm::campaign_spec eback
        = farm::campaign_from_json(farm::json_value::parse(ebytes));
    EXPECT_EQ(eback.tuning.ordering, numeric::column_ordering::amd);
}

} // namespace
