// Stability-plot computation and peak analysis: property sweeps over the
// damping ratio and natural frequency, special-case classification.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "numeric/interpolation.h"
#include "core/second_order.h"
#include "core/stability_plot.h"
#include "numeric/rational.h"

namespace {

using namespace acstab;
using namespace acstab::core;

stability_plot plot_of_prototype(real zeta, real fn_hz, real fstart, real fstop,
                                 std::size_t ppd, plot_options popt = {})
{
    const auto t = numeric::rational::second_order_lowpass(zeta, to_omega(fn_hz));
    sweep_spec sweep;
    sweep.fstart = fstart;
    sweep.fstop = fstop;
    sweep.points_per_decade = ppd;
    const std::vector<real> freqs = sweep.frequencies();
    std::vector<real> mag(freqs.size());
    for (std::size_t i = 0; i < freqs.size(); ++i)
        mag[i] = t.magnitude(to_omega(freqs[i]));
    return compute_stability_plot(freqs, mag, popt);
}

// ---- property sweep over zeta (paper eq. 1.4) -------------------------

class zeta_sweep : public ::testing::TestWithParam<double> {};

TEST_P(zeta_sweep, peak_encodes_damping_and_frequency)
{
    const real zeta = GetParam();
    const real fn = 1e6;
    const stability_plot plot = plot_of_prototype(zeta, fn, 1e3, 1e9, 60);
    const stability_peak* peak = plot.dominant_pole();
    ASSERT_NE(peak, nullptr) << "zeta=" << zeta;
    EXPECT_EQ(peak->flag, peak_flag::normal);
    // The curvature dip sits at wn itself (not the magnitude resonance).
    EXPECT_NEAR(peak->freq_hz, fn, fn * 0.03) << "zeta=" << zeta;
    const real expected = -1.0 / (zeta * zeta);
    const real tol = zeta < 0.15 ? 0.12 : 0.05; // narrow dips need finer grids
    EXPECT_NEAR(peak->value, expected, std::fabs(expected) * tol) << "zeta=" << zeta;
}

INSTANTIATE_TEST_SUITE_P(damping_grid, zeta_sweep,
                         ::testing::Values(0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7));

// ---- property sweep over natural frequency ----------------------------

class fn_sweep : public ::testing::TestWithParam<double> {};

TEST_P(fn_sweep, peak_follows_natural_frequency)
{
    const real fn = GetParam();
    const stability_plot plot = plot_of_prototype(0.3, fn, fn / 1e3, fn * 1e3, 50);
    const stability_peak* peak = plot.dominant_pole();
    ASSERT_NE(peak, nullptr);
    EXPECT_NEAR(peak->freq_hz, fn, fn * 0.02);
    EXPECT_NEAR(peak->value, -1.0 / 0.09, 1.0 / 0.09 * 0.05);
}

INSTANTIATE_TEST_SUITE_P(frequency_grid, fn_sweep,
                         ::testing::Values(1e3, 1e4, 1e5, 1e6, 1e7, 1e8));

// ---- grid-density convergence ------------------------------------------

TEST(stability_plot, denser_grids_converge_to_eq14)
{
    const real zeta = 0.2;
    real prev_err = 1e9;
    for (const std::size_t ppd : {10u, 20u, 40u, 80u}) {
        const stability_plot plot = plot_of_prototype(zeta, 1e6, 1e3, 1e9, ppd);
        const stability_peak* peak = plot.dominant_pole();
        ASSERT_NE(peak, nullptr) << "ppd=" << ppd;
        const real err = std::fabs(peak->value + 25.0);
        EXPECT_LT(err, prev_err * 1.1) << "ppd=" << ppd;
        prev_err = err;
    }
    EXPECT_LT(prev_err, 0.35);
}

// ---- multiple loops ------------------------------------------------------

TEST(stability_plot, two_separated_pole_pairs_both_found)
{
    const auto t1 = numeric::rational::second_order_lowpass(0.2, to_omega(1e5));
    const auto t2 = numeric::rational::second_order_lowpass(0.4, to_omega(1e8));
    sweep_spec sweep;
    sweep.fstart = 1e3;
    sweep.fstop = 1e10;
    sweep.points_per_decade = 50;
    const std::vector<real> freqs = sweep.frequencies();
    std::vector<real> mag(freqs.size());
    for (std::size_t i = 0; i < freqs.size(); ++i)
        mag[i] = t1.magnitude(to_omega(freqs[i])) * t2.magnitude(to_omega(freqs[i]));
    const stability_plot plot = compute_stability_plot(freqs, mag);

    std::vector<const stability_peak*> poles;
    for (const auto& pk : plot.peaks)
        if (pk.kind == peak_kind::complex_pole)
            poles.push_back(&pk);
    ASSERT_EQ(poles.size(), 2u);
    EXPECT_NEAR(poles[0]->freq_hz, 1e5, 3e3);
    EXPECT_NEAR(poles[0]->value, -25.0, 1.5);
    EXPECT_NEAR(poles[1]->freq_hz, 1e8, 3e6);
    EXPECT_NEAR(poles[1]->value, -6.25, 0.5);
    // The dominant pole is the least-damped one.
    EXPECT_EQ(plot.dominant_pole(), poles[0]);
}

TEST(stability_plot, complex_zero_pair_gives_positive_peak)
{
    // A notch: T(s) = (s^2 + 2 zz s + 1) / (s^2 + 2 zp s + 1) with the
    // zero much less damped than the pole.
    const real zz = 0.1;
    const real zp = 0.9;
    sweep_spec sweep;
    sweep.fstart = 1e-3;
    sweep.fstop = 1e3;
    sweep.points_per_decade = 60;
    const std::vector<real> freqs = sweep.frequencies();
    std::vector<real> mag(freqs.size());
    for (std::size_t i = 0; i < freqs.size(); ++i) {
        const cplx s{0.0, freqs[i]};
        const cplx num = s * s + 2.0 * zz * s + 1.0;
        const cplx den = s * s + 2.0 * zp * s + 1.0;
        mag[i] = std::abs(num / den);
    }
    const stability_plot plot = compute_stability_plot(freqs, mag);
    bool found_zero = false;
    for (const auto& pk : plot.peaks)
        if (pk.kind == peak_kind::complex_zero && pk.value > 50.0)
            found_zero = true;
    EXPECT_TRUE(found_zero);
    // No under-damped pole exists: dominant pole peak must be weak/absent.
    const stability_peak* pole = plot.dominant_pole();
    if (pole != nullptr)
        EXPECT_GT(pole->value, -2.0);
}

// ---- real poles are filtered out (the method's core claim) --------------

TEST(stability_plot, real_pole_chain_produces_no_pole_peak)
{
    sweep_spec sweep;
    sweep.fstart = 1e2;
    sweep.fstop = 1e8;
    sweep.points_per_decade = 40;
    const std::vector<real> freqs = sweep.frequencies();
    std::vector<real> mag(freqs.size());
    for (std::size_t i = 0; i < freqs.size(); ++i) {
        const real w = freqs[i];
        // Three well-separated real poles.
        mag[i] = 1.0
            / (std::sqrt(1.0 + std::pow(w / 1e4, 2)) * std::sqrt(1.0 + std::pow(w / 1e5, 2))
               * std::sqrt(1.0 + std::pow(w / 1e6, 2)));
    }
    const stability_plot plot = compute_stability_plot(freqs, mag);
    const stability_peak* peak = plot.dominant_pole();
    // A single real pole's curvature dip bottoms out at -0.5; a chain can
    // deepen slightly, but stays far above any genuine complex signature.
    if (peak != nullptr)
        EXPECT_GT(peak->value, -1.1);
}

// ---- special cases -------------------------------------------------------

TEST(stability_plot, end_of_range_flag)
{
    // Resonance sits outside (above) the swept band.
    const stability_plot plot = plot_of_prototype(0.3, 1.15e6, 1e3, 1e6, 40);
    const stability_peak* peak = plot.dominant_pole();
    ASSERT_NE(peak, nullptr);
    EXPECT_EQ(peak->flag, peak_flag::end_of_range);
}

TEST(stability_plot, min_peak_threshold_filters)
{
    plot_options popt;
    popt.min_peak = 30.0; // above the -25 peak of zeta = 0.2
    const stability_plot plot = plot_of_prototype(0.2, 1e6, 1e3, 1e9, 40, popt);
    EXPECT_EQ(plot.dominant_pole(), nullptr);
}

TEST(stability_plot, shoulder_suppression_removes_false_zeros)
{
    const stability_plot with = plot_of_prototype(0.2, 1e6, 1e3, 1e9, 60);
    std::size_t zeros_with = 0;
    for (const auto& pk : with.peaks)
        if (pk.kind == peak_kind::complex_zero)
            ++zeros_with;
    EXPECT_EQ(zeros_with, 0u) << "pole shoulders must not be reported as zeros";

    plot_options keep;
    keep.suppress_pole_shoulders = false;
    const stability_plot without = plot_of_prototype(0.2, 1e6, 1e3, 1e9, 60, keep);
    std::size_t zeros_without = 0;
    for (const auto& pk : without.peaks)
        if (pk.kind == peak_kind::complex_zero)
            ++zeros_without;
    EXPECT_GE(zeros_without, 1u);
}

TEST(stability_plot, direct_formula_option_agrees)
{
    plot_options direct;
    direct.use_direct_formula = true;
    const stability_plot a = plot_of_prototype(0.25, 1e6, 1e3, 1e9, 60);
    const stability_plot b = plot_of_prototype(0.25, 1e6, 1e3, 1e9, 60, direct);
    const stability_peak* pa = a.dominant_pole();
    const stability_peak* pb = b.dominant_pole();
    ASSERT_NE(pa, nullptr);
    ASSERT_NE(pb, nullptr);
    EXPECT_NEAR(pa->value, pb->value, std::fabs(pa->value) * 0.06);
    EXPECT_NEAR(pa->freq_hz, pb->freq_hz, pa->freq_hz * 0.02);
}

// ---- non-uniform grids (the adaptive sweep's union grids) ----------------

TEST(stability_plot, nonuniform_union_grid_locates_peak_correctly)
{
    // Regression: the adaptive sweep emits a dense log grid merged with
    // solved refinement points — non-uniform spacing, clusters around the
    // peak, and (worst case) points brushing each other. Peak/Q
    // extraction must still read the analytic values.
    const real zeta = 0.2;
    const real fn = 1e6;
    const auto t = numeric::rational::second_order_lowpass(zeta, to_omega(fn));

    std::vector<real> freqs;
    // Coarse 6/decade backbone away from the peak...
    for (const real f : numeric::log_space(1e3, 1e9, 37))
        freqs.push_back(f);
    // ...a dense refinement cluster across the peak (120/decade)...
    for (const real f : numeric::log_space(fn / 3.0, fn * 3.0, 115))
        freqs.push_back(f);
    // ...and near-duplicates: output points brushing solved points a few
    // ulps apart, where magnitude rounding noise dwarfs the true slope and
    // raw 3-point curvature stencils manufacture spurious extrema (without
    // the coalescing fix this fixture reports a phantom second pole).
    freqs.push_back(3.3e5 * (1.0 + 2e-15));
    freqs.push_back(3.3e5);
    freqs.push_back(7.7e6 * (1.0 + 4e-15));
    freqs.push_back(7.7e6);
    std::sort(freqs.begin(), freqs.end());
    freqs.erase(std::unique(freqs.begin(), freqs.end()), freqs.end());

    std::vector<real> mag(freqs.size());
    for (std::size_t i = 0; i < freqs.size(); ++i)
        mag[i] = t.magnitude(to_omega(freqs[i]));

    const stability_plot plot = compute_stability_plot(freqs, mag);
    const stability_peak* peak = plot.dominant_pole();
    ASSERT_NE(peak, nullptr);
    EXPECT_EQ(peak->flag, peak_flag::normal);
    EXPECT_NEAR(peak->freq_hz, fn, fn * 0.02);
    const real expected = -1.0 / (zeta * zeta);
    EXPECT_NEAR(peak->value, expected, std::fabs(expected) * 0.05);
    // Exactly one pole must be reported: the near-duplicate pairs must
    // not masquerade as extra extrema.
    std::size_t poles = 0;
    for (const auto& pk : plot.peaks)
        if (pk.kind == peak_kind::complex_pole)
            ++poles;
    EXPECT_EQ(poles, 1u);
}

TEST(stability_plot, coalescing_leaves_uniform_grids_untouched)
{
    const stability_plot plot = plot_of_prototype(0.3, 1e6, 1e3, 1e9, 40);
    // A 40/decade grid is far coarser than the coalescing threshold:
    // every input point must survive.
    sweep_spec sweep;
    sweep.fstart = 1e3;
    sweep.fstop = 1e9;
    sweep.points_per_decade = 40;
    EXPECT_EQ(plot.freq_hz.size(), sweep.frequencies().size());
    plot_options off;
    off.min_separation_decades = 0.0;
    const stability_plot raw = plot_of_prototype(0.3, 1e6, 1e3, 1e9, 40, off);
    ASSERT_NE(plot.dominant_pole(), nullptr);
    ASSERT_NE(raw.dominant_pole(), nullptr);
    EXPECT_EQ(plot.dominant_pole()->value, raw.dominant_pole()->value);
    EXPECT_EQ(plot.dominant_pole()->freq_hz, raw.dominant_pole()->freq_hz);
}

TEST(stability_plot, rejects_unsorted_frequencies)
{
    std::vector<real> f{1, 2, 3, 4, 5, 6, 8, 7};
    std::vector<real> m(8, 1.0);
    EXPECT_THROW(compute_stability_plot(f, m), analysis_error);
}

TEST(stability_plot, input_validation)
{
    const std::vector<real> f{1.0, 2.0, 3.0};
    const std::vector<real> m{1.0, 1.0, 1.0};
    EXPECT_THROW(compute_stability_plot(f, m), analysis_error); // too short
    const std::vector<real> f8{1, 2, 3, 4, 5, 6, 7, 8};
    const std::vector<real> m7{1, 1, 1, 1, 1, 1, 1};
    EXPECT_THROW(compute_stability_plot(f8, m7), analysis_error); // mismatch
}

TEST(sweep_spec, grid_properties)
{
    sweep_spec sweep;
    sweep.fstart = 1e3;
    sweep.fstop = 1e6;
    sweep.points_per_decade = 10;
    const std::vector<real> f = sweep.frequencies();
    EXPECT_NEAR(f.front(), 1e3, 1e-9);
    EXPECT_NEAR(f.back(), 1e6, 1e-6);
    EXPECT_GE(f.size(), 30u);
    sweep.fstop = 1e2;
    EXPECT_THROW(sweep.frequencies(), analysis_error);
}

} // namespace
