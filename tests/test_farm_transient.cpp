// Transient farm campaigns: plan/record serialization, merge byte
// identity, thread independence, hierarchical nodes, and the paper's
// time-domain vs frequency-domain stability cross-check.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "core/tran_stability.h"
#include "farm/campaign.h"
#include "farm/executor.h"
#include "farm/json.h"
#include "spice/parser/netlist_parser.h"

#ifndef ACSTAB_NETLIST_DIR
#define ACSTAB_NETLIST_DIR "netlists"
#endif

namespace {

using namespace acstab;

[[nodiscard]] std::string netlist_path(const std::string& name)
{
    return std::string(ACSTAB_NETLIST_DIR) + "/" + name;
}

/// Transient campaign over the shipped two-pole loop: a driven source
/// ("vin" steps), a 2x2 TEMP x corner grid. gain is a real netlist
/// parameter of the loop, so the corner overrides take effect.
[[nodiscard]] farm::campaign_spec loop_campaign()
{
    farm::campaign_spec spec;
    spec.netlist = netlist_path("two_pole_loop.sp");
    spec.node = "out";
    spec.analysis = farm::campaign_analysis::transient;
    spec.tran_source = "vin";
    spec.tran_tstop = 1.3e-5;
    spec.tran_step = 0.01;
    spec.grid.temps = {27.0, 85.0};
    return spec;
}

TEST(farm_transient, plan_round_trips_and_keeps_other_plans_stable)
{
    const farm::campaign_spec spec = loop_campaign();
    const std::string bytes = farm::to_json(spec).dump();
    EXPECT_NE(bytes.find("\"analysis\":\"transient\""), std::string::npos);
    EXPECT_NE(bytes.find("\"transient\":{"), std::string::npos);

    const farm::campaign_spec back
        = farm::campaign_from_json(farm::json_value::parse(bytes));
    EXPECT_EQ(back.analysis, farm::campaign_analysis::transient);
    EXPECT_EQ(back.tran_source, "vin");
    EXPECT_DOUBLE_EQ(back.tran_tstop, 1.3e-5);
    EXPECT_DOUBLE_EQ(back.tran_step, 0.01);
    EXPECT_EQ(farm::to_json(back).dump(), bytes);

    // Stability plans must not grow an analysis/transient member: their
    // bytes are frozen so shard files from older binaries still merge.
    farm::campaign_spec stab = spec;
    stab.analysis = farm::campaign_analysis::stability;
    stab.tran_source.clear();
    const std::string stab_bytes = farm::to_json(stab).dump();
    EXPECT_EQ(stab_bytes.find("analysis"), std::string::npos);
    EXPECT_EQ(stab_bytes.find("transient"), std::string::npos);
}

TEST(farm_transient, record_round_trips_byte_exactly)
{
    const farm::campaign_spec spec = loop_campaign();
    const std::vector<farm::point_record> records = farm::run_shard(spec, 0, 1);
    ASSERT_EQ(records.size(), 2u);
    for (const farm::point_record& rec : records) {
        ASSERT_EQ(rec.status, core::point_status::ok) << rec.error;
        ASSERT_TRUE(rec.transient.has_value());
        EXPECT_TRUE(rec.transient->stable);
        EXPECT_GT(rec.transient->overshoot_pct, 30.0);
        EXPECT_GT(rec.transient->equiv_pm_deg, 5.0);
        EXPECT_FALSE(rec.transient->time_s.empty());
        EXPECT_EQ(rec.transient->time_s.size(), rec.transient->value.size());

        const farm::json_value obj = farm::point_record_to_json(rec);
        const farm::point_record back = farm::point_record_from_json(obj);
        EXPECT_EQ(farm::point_record_to_json(back).dump(), obj.dump());
        ASSERT_TRUE(back.transient.has_value());
        EXPECT_EQ(back.transient->zeta, rec.transient->zeta);
        EXPECT_EQ(back.transient->value, rec.transient->value);
    }
}

TEST(farm_transient, two_shard_merge_is_byte_identical_to_single_run)
{
    const farm::campaign_spec spec = loop_campaign();
    const std::vector<farm::point_record> all = farm::run_shard(spec, 0, 1);
    const std::vector<farm::point_record> s0 = farm::run_shard(spec, 0, 2);
    const std::vector<farm::point_record> s1 = farm::run_shard(spec, 1, 2);

    const std::string single
        = farm::merge_shards(spec, {farm::shard_to_json(spec, 0, 1, all)}).dump();
    const std::string sharded
        = farm::merge_shards(spec, {farm::shard_to_json(spec, 0, 2, s0),
                                    farm::shard_to_json(spec, 1, 2, s1)})
              .dump();
    EXPECT_EQ(single, sharded);

    // Shard order must not matter either.
    const std::string reversed
        = farm::merge_shards(spec, {farm::shard_to_json(spec, 1, 2, s1),
                                    farm::shard_to_json(spec, 0, 2, s0)})
              .dump();
    EXPECT_EQ(single, reversed);
}

TEST(farm_transient, thread_count_does_not_change_record_bytes)
{
    const farm::campaign_spec spec = loop_campaign();
    const std::vector<farm::point_record> serial = farm::run_shard(spec, 0, 1, 1);
    const std::vector<farm::point_record> threaded = farm::run_shard(spec, 0, 1, 4);
    const std::string a
        = farm::merge_shards(spec, {farm::shard_to_json(spec, 0, 1, serial)}).dump();
    const std::string b
        = farm::merge_shards(spec, {farm::shard_to_json(spec, 0, 1, threaded)}).dump();
    EXPECT_EQ(a, b);
}

TEST(farm_transient, point_runner_matches_run_shard_bytes)
{
    const farm::campaign_spec spec = loop_campaign();
    const std::vector<farm::point_record> all = farm::run_shard(spec, 0, 1);
    const farm::point_runner runner(spec);
    for (std::size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(farm::point_record_to_json(runner.run(i)).dump(),
                  farm::point_record_to_json(all[i]).dump());
}

TEST(farm_transient, report_table_shows_transient_columns)
{
    const farm::campaign_spec spec = loop_campaign();
    const std::vector<farm::point_record> all = farm::run_shard(spec, 0, 1);
    const farm::json_value report
        = farm::merge_shards(spec, {farm::shard_to_json(spec, 0, 1, all)});
    const std::string table = farm::format_report(report);
    EXPECT_NE(table.find("transient-campaign report, node 'out'"), std::string::npos);
    EXPECT_NE(table.find("overshoot"), std::string::npos);
    EXPECT_NE(table.find("equiv PM"), std::string::npos);
    EXPECT_NE(table.find("T=27"), std::string::npos);
}

TEST(farm_transient, hierarchical_node_names_reach_reports)
{
    // Subcircuit internals stay addressable end to end: the campaign
    // watches x1.mid, the record is ok, and the report names the node.
    const std::string path = "test_farm_tran_sub.sp";
    {
        std::ofstream out(path, std::ios::binary);
        out << "* subckt transient fixture\n"
               ".subckt rcsec top bottom\n"
               "R1 top mid 1k\n"
               "C1 mid bottom 1n\n"
               "R2 mid bottom 1k\n"
               ".ends\n"
               "V1 in 0 0\n"
               "X1 in 0 rcsec\n"
               ".end\n";
    }
    farm::campaign_spec spec;
    spec.netlist = path;
    spec.node = "x1.mid";
    spec.analysis = farm::campaign_analysis::transient;
    spec.tran_source = "v1";
    spec.tran_tstop = 1e-5;
    const std::vector<farm::point_record> recs = farm::run_shard(spec, 0, 1);
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].status, core::point_status::ok) << recs[0].error;
    ASSERT_TRUE(recs[0].transient.has_value());
    EXPECT_TRUE(recs[0].transient->stable);
    const std::string table = farm::format_report(
        farm::merge_shards(spec, {farm::shard_to_json(spec, 0, 1, recs)}));
    EXPECT_NE(table.find("x1.mid"), std::string::npos);
    std::remove(path.c_str());
}

// --- AC vs transient cross-check (the PR's headline contract) --------------
//
// The AC analyzer reads zeta off the stability plot's peak and maps it
// to a phase margin with the paper's rule of thumb (PM ~ 100 * zeta,
// capped at 90). The transient path re-measures zeta from the step
// response (overshoot inversion, or ring-down log decrement when there
// is no overshoot reference) and applies the SAME mapping. The two
// verdicts must agree within 5 degrees — the documented tolerance of
// the cross-check, dominated by the rule-of-thumb's own bias and the
// discretization of the waveform extrema.

TEST(farm_transient, crosscheck_two_pole_loop_driven_step)
{
    spice::parsed_netlist net = spice::parse_netlist_file(netlist_path("two_pole_loop.sp"));

    core::stability_options sopt;
    sopt.sweep.fstart = 1e4;
    sopt.sweep.fstop = 1e8;
    sopt.sweep.points_per_decade = 60;
    core::stability_analyzer an(net.ckt, sopt);
    const core::node_stability ac = an.analyze_node("out");
    ASSERT_TRUE(ac.is_underdamped);

    core::tran_stability_options topt;
    topt.source = "vin";
    topt.tstop = 1.3e-5;
    const core::tran_stability_result tr
        = core::measure_tran_stability(net.ckt, "out", topt);
    EXPECT_TRUE(tr.stable);
    EXPECT_NEAR(tr.zeta, ac.zeta, 0.05);
    EXPECT_NEAR(tr.equiv_pm_deg, ac.phase_margin_est_deg, 5.0);
}

TEST(farm_transient, crosscheck_rlc_tank_injected_step)
{
    // No source in the tank netlist: the measurement injects a current
    // step at the watched node and reads zeta from the ring-down log
    // decrement. The fixture's exact damping is 0.2 (paper eq. 1.4).
    spice::parsed_netlist net = spice::parse_netlist_file(netlist_path("rlc_tank.sp"));

    core::stability_options sopt;
    sopt.sweep.fstart = 1e4;
    sopt.sweep.fstop = 1e8;
    sopt.sweep.points_per_decade = 60;
    core::stability_analyzer an(net.ckt, sopt);
    const core::node_stability ac = an.analyze_node("tank");
    ASSERT_TRUE(ac.is_underdamped);
    EXPECT_NEAR(ac.zeta, 0.2, 0.02);

    core::tran_stability_options topt;
    topt.tstop = 1e-5;
    const core::tran_stability_result tr
        = core::measure_tran_stability(net.ckt, "tank", topt);
    EXPECT_TRUE(tr.stable);
    EXPECT_TRUE(tr.ringing);
    EXPECT_NEAR(tr.zeta, ac.zeta, 0.05);
    EXPECT_NEAR(tr.equiv_pm_deg, ac.phase_margin_est_deg, 5.0);
    EXPECT_NEAR(tr.ringing_freq_hz, 1e6, 1e5);
}

TEST(farm_transient, unstable_loop_flagged_unstable_in_time_domain)
{
    // The three-pole loop's AC verdict is UNSTABLE (PM about -61 deg);
    // its step response must not settle either.
    spice::parsed_netlist net
        = spice::parse_netlist_file(netlist_path("three_pole_loop.sp"));
    core::tran_stability_options topt;
    topt.source = "vin";
    topt.tstop = 5e-3; // several periods of the ~30 kHz growing oscillation
    const core::tran_stability_result tr
        = core::measure_tran_stability(net.ckt, "out", topt);
    EXPECT_FALSE(tr.stable);
    EXPECT_LT(tr.equiv_pm_deg, 10.0);
}

} // namespace
