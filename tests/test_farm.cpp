// Corner-farm subsystem: declarative grids, serializable shards,
// deterministic merge.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "core/param_grid.h"
#include "core/sweeps.h"
#include "farm/campaign.h"
#include "farm/executor.h"
#include "farm/json.h"
#include "spice/parser/netlist_parser.h"

#ifndef ACSTAB_NETLIST_DIR
#define ACSTAB_NETLIST_DIR "netlists"
#endif

namespace {

using namespace acstab;

constexpr const char* tank_netlist = R"(* parameterized RLC tank
.param rval=397.887 cval=1n
r1 tank 0 {rval}
l1 tank 0 25.3303u
c1 tank 0 {cval}
.stability tank 1e4 1e8 40
.end
)";

/// Write the parameterized tank netlist to a scratch file (shard
/// executors re-read the netlist by path, so template tests need one).
[[nodiscard]] std::string tank_netlist_path()
{
    static const std::string path = [] {
        const std::string p = "test_farm_tank.sp";
        std::ofstream out(p, std::ios::binary);
        out << tank_netlist;
        return p;
    }();
    return path;
}

[[nodiscard]] farm::campaign_spec tank_campaign()
{
    farm::campaign_spec spec;
    spec.netlist = tank_netlist_path();
    spec.node = "tank";
    spec.fstart = 1e4;
    spec.fstop = 1e8;
    spec.points_per_decade = 40;
    spec.grid.temps = {0.0, 50.0};
    spec.grid.corners = {{"slow", {{"rval", 300.0}}}, {"fast", {{"rval", 500.0}}}};
    spec.grid.axes = {{"cval", {0.8e-9, 1.2e-9}}};
    return spec;
}

// --- param_grid ------------------------------------------------------------

TEST(param_grid, mixed_radix_decode_is_row_major)
{
    core::param_grid grid;
    grid.temps = {-40.0, 125.0};
    grid.corners = {{"ff", {{"a", 1.0}}}, {"ss", {{"a", 2.0}}}};
    grid.axes = {{"b", {10.0, 20.0, 30.0}}};
    ASSERT_EQ(grid.size(), 12u);

    // index = ((temp * corners) + corner) * axis + digit, last axis fastest.
    const core::grid_point p0 = grid.point(0);
    EXPECT_EQ(p0.index, 0u);
    EXPECT_DOUBLE_EQ(*p0.temp_celsius, -40.0);
    EXPECT_EQ(p0.corner, "ff");
    EXPECT_DOUBLE_EQ(p0.overrides.at("a"), 1.0);
    EXPECT_DOUBLE_EQ(p0.overrides.at("b"), 10.0);

    const core::grid_point p5 = grid.point(5);
    EXPECT_DOUBLE_EQ(*p5.temp_celsius, -40.0);
    EXPECT_EQ(p5.corner, "ss");
    EXPECT_DOUBLE_EQ(p5.overrides.at("b"), 30.0);

    const core::grid_point p11 = grid.point(11);
    EXPECT_DOUBLE_EQ(*p11.temp_celsius, 125.0);
    EXPECT_EQ(p11.corner, "ss");
    EXPECT_DOUBLE_EQ(p11.overrides.at("b"), 30.0);
    EXPECT_EQ(p11.label(), "T=125 corner=ss a=2 b=30");
}

TEST(param_grid, empty_axes_mean_one_nominal_point)
{
    core::param_grid grid;
    EXPECT_EQ(grid.size(), 1u);
    const core::grid_point pt = grid.point(0);
    EXPECT_FALSE(pt.temp_celsius.has_value());
    EXPECT_TRUE(pt.corner.empty());
    EXPECT_TRUE(pt.overrides.empty());
    EXPECT_EQ(pt.label(), "nominal");
}

TEST(param_grid, axis_overrides_same_named_corner_parameter)
{
    core::param_grid grid;
    grid.corners = {{"c", {{"x", 1.0}, {"y", 5.0}}}};
    grid.axes = {{"x", {9.0}}};
    const core::grid_point pt = grid.point(0);
    EXPECT_DOUBLE_EQ(pt.overrides.at("x"), 9.0); // axis wins
    EXPECT_DOUBLE_EQ(pt.overrides.at("y"), 5.0);
}

TEST(param_grid, validation_errors)
{
    core::param_grid grid;
    grid.axes = {{"a", {}}};
    EXPECT_THROW((void)grid.size(), analysis_error);
    grid.axes = {{"a", {1.0}}, {"a", {2.0}}};
    EXPECT_THROW((void)grid.size(), analysis_error);
    grid.axes = {{"a", {1.0}}};
    EXPECT_THROW((void)grid.point(1), analysis_error);
    grid.axes.clear();
    grid.corners = {{"c", {}}, {"c", {}}};
    EXPECT_THROW((void)grid.size(), analysis_error);
}

// --- shard partitioning ----------------------------------------------------

TEST(shard_slice, covers_every_point_exactly_once)
{
    for (const std::size_t total : {0u, 1u, 5u, 12u, 100u}) {
        for (const std::size_t shards : {1u, 2u, 3u, 7u}) {
            std::size_t covered = 0;
            std::size_t expected_begin = 0;
            for (std::size_t k = 0; k < shards; ++k) {
                const farm::shard_range r = farm::shard_slice(total, k, shards);
                EXPECT_EQ(r.begin, expected_begin);
                EXPECT_LE(r.end - r.begin, total / shards + 1);
                covered += r.end - r.begin;
                expected_begin = r.end;
            }
            EXPECT_EQ(covered, total);
            EXPECT_EQ(expected_begin, total);
        }
    }
    EXPECT_THROW((void)farm::shard_slice(10, 0, 0), analysis_error);
    EXPECT_THROW((void)farm::shard_slice(10, 2, 2), analysis_error);
}

// --- JSON ------------------------------------------------------------------

TEST(farm_json, dump_parse_round_trip_is_byte_stable)
{
    farm::json_value obj = farm::json_value::object();
    obj.set("a", farm::json_value::number(0.1));
    obj.set("b", farm::json_value::number(-1.25e-30));
    obj.set("c", farm::json_value::str("quote\" slash\\ tab\t ctrl\x01"));
    farm::json_value arr = farm::json_value::array();
    arr.push_back(farm::json_value::boolean(true));
    arr.push_back(farm::json_value{});
    arr.push_back(farm::json_value::number(std::size_t{1234567}));
    obj.set("d", std::move(arr));

    const std::string bytes = obj.dump();
    const farm::json_value reparsed = farm::json_value::parse(bytes);
    EXPECT_EQ(reparsed.dump(), bytes);
    EXPECT_DOUBLE_EQ(reparsed.at("a").as_number(), 0.1);
    EXPECT_DOUBLE_EQ(reparsed.at("b").as_number(), -1.25e-30);
    EXPECT_EQ(reparsed.at("c").as_string(), "quote\" slash\\ tab\t ctrl\x01");
    EXPECT_EQ(reparsed.at("d").items().size(), 3u);
    EXPECT_EQ(reparsed.at("d").items()[2].as_index(), 1234567u);
}

TEST(farm_json, non_finite_numbers_round_trip_as_valid_json)
{
    // Non-finite raw samples (a failed point's response, an infinite
    // impedance) must serialize as standard JSON — jq/Python choke on the
    // bare nan/inf tokens std::to_chars would emit.
    farm::json_value obj = farm::json_value::object();
    obj.set("nan", farm::json_value::number(std::nan("")));
    obj.set("pinf", farm::json_value::number(std::numeric_limits<real>::infinity()));
    obj.set("ninf", farm::json_value::number(-std::numeric_limits<real>::infinity()));
    farm::json_value arr = farm::json_value::array();
    arr.push_back(farm::json_value::number(1.5));
    arr.push_back(farm::json_value::number(std::nan("")));
    obj.set("mix", std::move(arr));

    const std::string bytes = obj.dump();
    EXPECT_EQ(bytes, R"({"nan":"nan","pinf":"inf","ninf":"-inf","mix":[1.5,"nan"]})");

    // Parse -> dump is byte-stable, and numeric consumers see the values.
    const farm::json_value reparsed = farm::json_value::parse(bytes);
    EXPECT_EQ(reparsed.dump(), bytes);
    EXPECT_TRUE(std::isnan(reparsed.at("nan").as_number()));
    EXPECT_EQ(reparsed.at("pinf").as_number(), std::numeric_limits<real>::infinity());
    EXPECT_EQ(reparsed.at("ninf").as_number(), -std::numeric_limits<real>::infinity());
    EXPECT_TRUE(std::isnan(reparsed.at("mix").items()[1].as_number()));

    // Legacy bare tokens (what older builds dumped) still parse, and
    // re-serialize into the canonical string form.
    const farm::json_value legacy = farm::json_value::parse("[nan,inf,-inf]");
    EXPECT_TRUE(std::isnan(legacy.items()[0].as_number()));
    EXPECT_EQ(legacy.dump(), R"(["nan","inf","-inf"])");

    // Other strings still refuse to masquerade as numbers.
    EXPECT_THROW((void)farm::json_value::parse(R"("infinite")").as_number(),
                 analysis_error);
}

TEST(farm_json, rejects_malformed_documents)
{
    EXPECT_THROW((void)farm::json_value::parse("{\"a\":}"), parse_error);
    EXPECT_THROW((void)farm::json_value::parse("[1,2"), parse_error);
    EXPECT_THROW((void)farm::json_value::parse("{} trailing"), parse_error);
    EXPECT_THROW((void)farm::json_value::parse("\"unterminated"), parse_error);
    // Pathological nesting must fail cleanly, not overflow the stack.
    const std::string deep(100000, '[');
    EXPECT_THROW((void)farm::json_value::parse(deep), parse_error);
}

TEST(farm_campaign, spec_round_trips_through_json)
{
    const farm::campaign_spec spec = tank_campaign();
    const std::string bytes = farm::to_json(spec).dump();
    const farm::campaign_spec back
        = farm::campaign_from_json(farm::json_value::parse(bytes));
    EXPECT_EQ(farm::to_json(back).dump(), bytes);
    EXPECT_EQ(back.node, "tank");
    EXPECT_EQ(back.grid.size(), 8u);
    EXPECT_DOUBLE_EQ(back.grid.corners[1].overrides.at("rval"), 500.0);
}

// --- parser campaign inputs ------------------------------------------------

TEST(farm_parser, param_override_wins_over_netlist_card)
{
    spice::parse_options popt;
    popt.param_overrides["rval"] = 500.0;
    const spice::parsed_netlist net = spice::parse_netlist(tank_netlist, popt);
    EXPECT_DOUBLE_EQ(net.parameters.at("rval"), 500.0);
    EXPECT_DOUBLE_EQ(net.parameters.at("cval"), 1e-9); // untouched card value
}

TEST(farm_parser, temp_and_corner_cards_are_collected)
{
    const spice::parsed_netlist net = spice::parse_netlist(R"(* cards
r1 a 0 1k
.temp -40 27 125
.corner fast rval=0.9k
.corner slow
.end
)");
    ASSERT_EQ(net.temp_values.size(), 3u);
    EXPECT_DOUBLE_EQ(net.temp_values[1], 27.0);
    ASSERT_EQ(net.corners.size(), 2u);
    EXPECT_EQ(net.corners[0].name, "fast");
    EXPECT_DOUBLE_EQ(net.corners[0].overrides.at("rval"), 900.0);
    EXPECT_TRUE(net.corners[1].overrides.empty());

    const core::param_grid grid = core::grid_from_netlist_cards(net);
    EXPECT_EQ(grid.size(), 6u);
}

TEST(farm_parser, model_temp_override_reaches_junction_devices)
{
    // A BJT's DC operating point depends on kT/q, so the same follower
    // at two temperatures must bias differently.
    const char* follower = R"(* one-transistor follower
.model n1 npn is=1e-16 bf=100
vcc vdd 0 5
vb b 0 2
q1 vdd b e n1
re e 0 1k
.end
)";
    spice::parse_options cold;
    cold.temp_celsius = -40.0;
    spice::parse_options hot;
    hot.temp_celsius = 125.0;
    spice::parsed_netlist net_cold = spice::parse_netlist(follower, cold);
    spice::parsed_netlist net_hot = spice::parse_netlist(follower, hot);
    const spice::dc_result op_cold = spice::dc_operating_point(net_cold.ckt);
    const spice::dc_result op_hot = spice::dc_operating_point(net_hot.ckt);
    const auto e_cold = net_cold.ckt.find_node("e");
    const auto e_hot = net_hot.ckt.find_node("e");
    ASSERT_TRUE(e_cold && e_hot);
    const real v_cold = op_cold.solution[static_cast<std::size_t>(*e_cold)];
    const real v_hot = op_hot.solution[static_cast<std::size_t>(*e_hot)];
    EXPECT_GT(std::fabs(v_cold - v_hot), 0.05); // VBE shifts with temp
}

// --- shard execution and merge --------------------------------------------

TEST(farm_executor, two_shard_merge_is_byte_identical_to_single_run)
{
    const farm::campaign_spec spec = tank_campaign();

    const std::vector<farm::point_record> all = farm::run_shard(spec, 0, 1);
    const farm::json_value single
        = farm::merge_shards(spec, {farm::shard_to_json(spec, 0, 1, all)});

    const std::vector<farm::point_record> s0 = farm::run_shard(spec, 0, 2);
    const std::vector<farm::point_record> s1 = farm::run_shard(spec, 1, 2);
    EXPECT_EQ(s0.size() + s1.size(), spec.grid.size());
    const farm::json_value sharded = farm::merge_shards(
        spec, {farm::shard_to_json(spec, 0, 2, s0), farm::shard_to_json(spec, 1, 2, s1)});

    EXPECT_EQ(single.dump(), sharded.dump());

    // Shard order must not matter either.
    const farm::json_value reversed = farm::merge_shards(
        spec, {farm::shard_to_json(spec, 1, 2, s1), farm::shard_to_json(spec, 0, 2, s0)});
    EXPECT_EQ(single.dump(), reversed.dump());
}

TEST(farm_executor, point_runner_matches_run_shard_bytes)
{
    // The orchestrator's workers execute one point at a time through
    // point_runner; retries and resumes are only byte-safe if those
    // records are identical to the batch path's.
    const farm::campaign_spec spec = tank_campaign();
    const std::vector<farm::point_record> batch = farm::run_shard(spec, 0, 1);
    const farm::point_runner runner(spec);
    ASSERT_EQ(batch.size(), spec.grid.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const farm::point_record one = runner.run(i);
        EXPECT_EQ(farm::point_record_to_json(one).dump(),
                  farm::point_record_to_json(batch[i]).dump())
            << "point " << i;
    }
}

TEST(farm_executor, threaded_run_matches_serial_bytes)
{
    const farm::campaign_spec spec = tank_campaign();
    const std::vector<farm::point_record> serial = farm::run_shard(spec, 0, 1, 1);
    const std::vector<farm::point_record> threaded = farm::run_shard(spec, 0, 1, 4);
    const std::string a
        = farm::merge_shards(spec, {farm::shard_to_json(spec, 0, 1, serial)}).dump();
    const std::string b
        = farm::merge_shards(spec, {farm::shard_to_json(spec, 0, 1, threaded)}).dump();
    EXPECT_EQ(a, b);
}

TEST(farm_executor, records_carry_summary_and_raw_response)
{
    farm::campaign_spec spec = tank_campaign();
    spec.grid.temps.clear();
    spec.grid.corners.clear(); // single cval axis -> 2 points
    const std::vector<farm::point_record> records = farm::run_shard(spec, 0, 1);
    ASSERT_EQ(records.size(), 2u);
    for (const farm::point_record& rec : records) {
        EXPECT_EQ(rec.status, core::point_status::ok);
        EXPECT_TRUE(rec.has_peak);
        EXPECT_NEAR(rec.fn_hz, 1e6, 0.3e6);
        EXPECT_GT(rec.freq_hz.size(), 100u); // the raw response is recorded
        EXPECT_EQ(rec.freq_hz.size(), rec.magnitude.size());
    }
    // JSON record round trip preserves everything.
    const farm::json_value doc = farm::shard_to_json(spec, 0, 1, records);
    const std::vector<farm::point_record> back = farm::records_from_json(doc);
    ASSERT_EQ(back.size(), records.size());
    EXPECT_EQ(back[1].index, records[1].index);
    EXPECT_EQ(back[1].freq_hz, records[1].freq_hz);
    EXPECT_EQ(back[1].magnitude, records[1].magnitude);
    EXPECT_DOUBLE_EQ(back[0].zeta, records[0].zeta);
}

TEST(farm_executor, pathological_corner_is_recorded_not_thrown)
{
    farm::campaign_spec spec = tank_campaign();
    spec.grid.temps.clear();
    spec.grid.axes.clear();
    spec.grid.corners = {{"dead", {{"rval", 0.0}}}, {"nominal", {}}};
    const std::vector<farm::point_record> records = farm::run_shard(spec, 0, 1);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].status, core::point_status::analysis_failed);
    EXPECT_NE(records[0].error.find("resistance"), std::string::npos);
    EXPECT_EQ(records[1].status, core::point_status::ok);
    EXPECT_TRUE(records[1].has_peak);

    // The failure still merges and renders.
    const farm::json_value report
        = farm::merge_shards(spec, {farm::shard_to_json(spec, 0, 1, records)});
    const std::string table = farm::format_report(report);
    EXPECT_NE(table.find("failed"), std::string::npos);
    EXPECT_NE(table.find("corner=nominal"), std::string::npos);
}

// --- impedance campaigns ---------------------------------------------------

[[nodiscard]] farm::campaign_spec follower_impedance_campaign()
{
    farm::campaign_spec spec;
    spec.netlist = std::string(ACSTAB_NETLIST_DIR) + "/follower.sp";
    spec.node = "f_out";
    spec.analysis = farm::campaign_analysis::impedance;
    spec.fstart = 1e5;
    spec.fstop = 1e10;
    spec.points_per_decade = 30;
    spec.grid.temps = {-40.0, 27.0, 125.0};
    return spec;
}

TEST(farm_campaign, impedance_spec_round_trips_through_json)
{
    farm::campaign_spec spec = follower_impedance_campaign();
    spec.source_elements = {"qf", "rsource"};
    const std::string bytes = farm::to_json(spec).dump();
    EXPECT_NE(bytes.find("\"analysis\":\"impedance\""), std::string::npos);
    const farm::campaign_spec back
        = farm::campaign_from_json(farm::json_value::parse(bytes));
    EXPECT_EQ(farm::to_json(back).dump(), bytes);
    EXPECT_EQ(back.analysis, farm::campaign_analysis::impedance);
    EXPECT_EQ(back.source_elements, (std::vector<std::string>{"qf", "rsource"}));

    // Stability plans must serialize WITHOUT the analysis member: their
    // bytes stay identical to pre-impedance builds, so old shard files
    // still pass the merge step's byte-exact campaign echo check, and
    // plans from older builds parse as stability campaigns.
    const farm::campaign_spec tank = tank_campaign();
    const std::string tank_bytes = farm::to_json(tank).dump();
    EXPECT_EQ(tank_bytes.find("analysis"), std::string::npos);
    EXPECT_EQ(campaign_from_json(farm::json_value::parse(tank_bytes)).analysis,
              farm::campaign_analysis::stability);
}

TEST(farm_executor, impedance_shards_merge_byte_identical_and_carry_verdicts)
{
    const farm::campaign_spec spec = follower_impedance_campaign();

    const std::vector<farm::point_record> all = farm::run_shard(spec, 0, 1);
    ASSERT_EQ(all.size(), 3u);
    for (const farm::point_record& rec : all) {
        ASSERT_EQ(rec.status, core::point_status::ok);
        ASSERT_TRUE(rec.impedance.has_value());
        EXPECT_TRUE(rec.impedance->stable);
        EXPECT_EQ(rec.impedance->encirclements, 0);
        EXPECT_GT(rec.impedance->nyquist_margin, 0.0);
        EXPECT_EQ(rec.impedance->freq_hz.size(), rec.impedance->lm_re.size());
        EXPECT_EQ(rec.impedance->freq_hz.size(), rec.impedance->lm_im.size());
    }

    const farm::json_value single
        = farm::merge_shards(spec, {farm::shard_to_json(spec, 0, 1, all)});
    const farm::json_value sharded = farm::merge_shards(
        spec, {farm::shard_to_json(spec, 0, 2, farm::run_shard(spec, 0, 2)),
               farm::shard_to_json(spec, 1, 2, farm::run_shard(spec, 1, 2, 2))});
    EXPECT_EQ(single.dump(), sharded.dump());

    // Records round-trip through JSON with the impedance payload intact.
    const std::vector<farm::point_record> back
        = farm::records_from_json(farm::shard_to_json(spec, 0, 1, all));
    ASSERT_EQ(back.size(), all.size());
    for (std::size_t i = 0; i < back.size(); ++i) {
        ASSERT_TRUE(back[i].impedance.has_value());
        EXPECT_EQ(back[i].impedance->stable, all[i].impedance->stable);
        EXPECT_EQ(back[i].impedance->lm_re, all[i].impedance->lm_re);
        EXPECT_EQ(back[i].impedance->lm_im, all[i].impedance->lm_im);
    }

    // The table renderer understands impedance reports.
    const std::string table = farm::format_report(single);
    EXPECT_NE(table.find("impedance-campaign report"), std::string::npos);
    EXPECT_NE(table.find("stable"), std::string::npos);
}

TEST(farm_executor, merge_rejects_gaps_duplicates_and_foreign_shards)
{
    const farm::campaign_spec spec = tank_campaign();
    const std::vector<farm::point_record> s0 = farm::run_shard(spec, 0, 2);
    const farm::json_value doc0 = farm::shard_to_json(spec, 0, 2, s0);

    // Missing the second shard.
    EXPECT_THROW((void)farm::merge_shards(spec, {doc0}), analysis_error);
    // Duplicate records.
    EXPECT_THROW((void)farm::merge_shards(spec, {doc0, doc0}), analysis_error);
    // Shard from a different campaign.
    farm::campaign_spec other = spec;
    other.points_per_decade = 17;
    EXPECT_THROW((void)farm::merge_shards(other, {doc0}), analysis_error);
}

} // namespace
