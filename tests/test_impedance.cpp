// Impedance-partition stability workload: partition semantics, the
// Nyquist-like minor-loop verdict, and the golden cross-check against the
// MNA pencil-pole classification on every shipped netlist.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "analysis/impedance.h"
#include "analysis/pole_zero.h"
#include "common/error.h"
#include "spice/dc_analysis.h"
#include "spice/parser/netlist_parser.h"

#ifndef ACSTAB_NETLIST_DIR
#define ACSTAB_NETLIST_DIR "netlists"
#endif

namespace {

using namespace acstab;

[[nodiscard]] spice::parsed_netlist load(const std::string& name)
{
    return spice::parse_netlist_file(std::string(ACSTAB_NETLIST_DIR) + "/" + name);
}

/// Ground truth: stable iff every pencil pole sits in the left half plane.
[[nodiscard]] bool poles_say_stable(const std::string& netlist)
{
    spice::parsed_netlist net = load(netlist);
    const spice::dc_result op = spice::dc_operating_point(net.ckt);
    for (const analysis::pole& p : analysis::circuit_poles(net.ckt, op.solution))
        if (p.s.real() > 1e-6 * std::abs(p.s))
            return false;
    return true;
}

struct workload {
    const char* netlist;
    const char* node;
    std::vector<std::string> source; ///< forced source-side elements
    real fstart;
    real fstop;
};

[[nodiscard]] std::vector<workload> shipped_workloads()
{
    return {
        {"follower.sp", "f_out", {}, 1e5, 1e10},
        {"rlc_tank.sp", "tank", {"l1"}, 1e4, 1e8},
        {"two_pole_loop.sp", "out", {}, 1e2, 1e8},
    };
}

TEST(impedance_partition, follower_splits_into_driver_and_load)
{
    spice::parsed_netlist net = load("follower.sp");
    const analysis::impedance_partition part
        = analysis::partition_at_node(net.ckt, "f_out");
    // The biased transistor side drives; the port/ground shunts load.
    const std::vector<std::string> source{"vdd_supply", "vbias", "rsource", "qf"};
    const std::vector<std::string> load_side{"if_load", "cload"};
    EXPECT_EQ(part.source_devices, source);
    EXPECT_EQ(part.load_devices, load_side);
}

TEST(impedance_partition, forced_elements_resolve_shunt_only_nodes)
{
    // Every tank element shunts the port straight to ground: connectivity
    // cannot split them, so the partition must demand --source...
    spice::parsed_netlist net = load("rlc_tank.sp");
    EXPECT_THROW((void)analysis::partition_at_node(net.ckt, "tank"), analysis_error);
    // ...and honor it when given.
    const analysis::impedance_partition part
        = analysis::partition_at_node(net.ckt, "tank", {"l1"});
    EXPECT_EQ(part.source_devices, std::vector<std::string>{"l1"});
    EXPECT_EQ(part.load_devices, (std::vector<std::string>{"r1", "c1"}));
}

TEST(impedance_partition, rejects_unknown_nodes_and_elements)
{
    spice::parsed_netlist net = load("follower.sp");
    EXPECT_THROW((void)analysis::partition_at_node(net.ckt, "nope"), analysis_error);
    EXPECT_THROW((void)analysis::partition_at_node(net.ckt, "0"), analysis_error);
    EXPECT_THROW((void)analysis::partition_at_node(net.ckt, "f_out", {"nope"}),
                 analysis_error);
    // A source-forced node has no meaningful driving-point partition.
    EXPECT_THROW((void)analysis::partition_at_node(net.ckt, "vdd"), analysis_error);
}

// The golden cross-check: on every shipped netlist, fixed and adaptive
// grids, 1 and 4 threads, the Nyquist-like impedance-ratio verdict must
// agree with the pencil-pole stability classification.
TEST(impedance_verdict, agrees_with_pole_analysis_on_all_shipped_netlists)
{
    for (const workload& w : shipped_workloads()) {
        const bool expect_stable = poles_say_stable(w.netlist);
        for (const bool adaptive : {false, true}) {
            for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
                spice::parsed_netlist net = load(w.netlist);
                analysis::impedance_options opt;
                opt.fstart = w.fstart;
                opt.fstop = w.fstop;
                opt.source_elements = w.source;
                opt.adaptive = adaptive;
                opt.threads = threads;
                const analysis::impedance_result res
                    = analysis::analyze_impedance(net.ckt, w.node, opt);
                EXPECT_EQ(res.stable, expect_stable)
                    << w.netlist << " adaptive=" << adaptive << " threads=" << threads;
                EXPECT_EQ(res.encirclements == 0, expect_stable)
                    << w.netlist << " adaptive=" << adaptive << " threads=" << threads;
                EXPECT_GT(res.nyquist_margin, 0.0);
                EXPECT_GT(res.factorizations, 0u);
            }
        }
    }
}

TEST(impedance_verdict, unstable_three_pole_loop_encircles_minus_one)
{
    // The shipped unstable loop: the criterion must flag it, with the
    // encirclement count matching its RHP pole pair.
    ASSERT_FALSE(poles_say_stable("three_pole_loop.sp"));
    for (const bool adaptive : {false, true}) {
        spice::parsed_netlist net = load("three_pole_loop.sp");
        analysis::impedance_options opt;
        opt.fstart = 1e2;
        opt.fstop = 1e8;
        opt.adaptive = adaptive;
        const analysis::impedance_result res
            = analysis::analyze_impedance(net.ckt, "out", opt);
        EXPECT_FALSE(res.stable) << "adaptive=" << adaptive;
        EXPECT_EQ(res.encirclements, 2) << "adaptive=" << adaptive;
    }
}

TEST(impedance_verdict, threads_do_not_change_results)
{
    spice::parsed_netlist net1 = load("follower.sp");
    spice::parsed_netlist net4 = load("follower.sp");
    analysis::impedance_options opt;
    opt.fstart = 1e5;
    opt.fstop = 1e10;
    analysis::impedance_options opt4 = opt;
    opt4.threads = 4;
    const analysis::impedance_result r1 = analysis::analyze_impedance(net1.ckt, "f_out", opt);
    const analysis::impedance_result r4
        = analysis::analyze_impedance(net4.ckt, "f_out", opt4);
    ASSERT_EQ(r1.freq_hz.size(), r4.freq_hz.size());
    for (std::size_t i = 0; i < r1.freq_hz.size(); ++i) {
        EXPECT_EQ(r1.freq_hz[i], r4.freq_hz[i]);
        EXPECT_EQ(r1.minor_loop[i], r4.minor_loop[i]);
    }
}

TEST(impedance_adaptive, matches_fixed_grid_verdict_and_margins_cheaply)
{
    spice::parsed_netlist fixed_net = load("follower.sp");
    spice::parsed_netlist adapt_net = load("follower.sp");
    analysis::impedance_options opt;
    opt.fstart = 1e5;
    opt.fstop = 1e10;
    analysis::impedance_options aopt = opt;
    aopt.adaptive = true;
    const analysis::impedance_result fixed
        = analysis::analyze_impedance(fixed_net.ckt, "f_out", opt);
    const analysis::impedance_result adaptive
        = analysis::analyze_impedance(adapt_net.ckt, "f_out", aopt);

    EXPECT_EQ(adaptive.stable, fixed.stable);
    ASSERT_TRUE(fixed.margins.has_unity_crossing);
    ASSERT_TRUE(adaptive.margins.has_unity_crossing);
    EXPECT_NEAR(adaptive.margins.phase_margin_deg, fixed.margins.phase_margin_deg, 0.5);
    EXPECT_NEAR(adaptive.nyquist_margin, fixed.nyquist_margin,
                0.02 * fixed.nyquist_margin);
    // The whole point: far fewer factorizations than the fixed grid.
    EXPECT_LE(3 * adaptive.factorizations, fixed.factorizations);
}

TEST(impedance_adaptive, rlc_pole_estimate_matches_analytic_tank)
{
    // Z_s = sL forced source against Z_l = R || 1/sC: the closed
    // interconnection is the tank itself, fn = 1 MHz, zeta = 0.2; the
    // AAA model of L_m must hand back that pole pair.
    spice::parsed_netlist net = load("rlc_tank.sp");
    analysis::impedance_options opt;
    opt.fstart = 1e4;
    opt.fstop = 1e8;
    opt.adaptive = true;
    opt.source_elements = {"l1"};
    const analysis::impedance_result res = analysis::analyze_impedance(net.ckt, "tank", opt);
    ASSERT_TRUE(res.has_model);
    ASSERT_FALSE(res.closed_loop_poles.empty());
    const analysis::pole& p = res.closed_loop_poles.front();
    EXPECT_NEAR(p.freq_hz, 1e6, 1e4);
    EXPECT_NEAR(p.zeta, 0.2, 0.005);
    EXPECT_TRUE(p.is_complex);
}

TEST(impedance_adaptive, unstable_pole_estimate_lands_in_right_half_plane)
{
    spice::parsed_netlist net = load("three_pole_loop.sp");
    analysis::impedance_options opt;
    opt.fstart = 1e2;
    opt.fstop = 1e8;
    opt.adaptive = true;
    const analysis::impedance_result res = analysis::analyze_impedance(net.ckt, "out", opt);
    ASSERT_TRUE(res.has_model);
    const bool any_rhp = std::any_of(res.closed_loop_poles.begin(),
                                     res.closed_loop_poles.end(),
                                     [](const analysis::pole& p) { return p.zeta < 0.0; });
    EXPECT_TRUE(any_rhp);
}

} // namespace
