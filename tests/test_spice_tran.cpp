// Transient analysis against closed-form step responses.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "spice/circuit.h"
#include "spice/devices/passive.h"
#include "spice/devices/sources.h"
#include "spice/measure.h"
#include "spice/tran_analysis.h"

namespace {

using namespace acstab;
using namespace acstab::spice;

TEST(tran, rc_charging_curve)
{
    circuit c;
    const node_id in = c.node("in");
    const node_id out = c.node("out");
    const real r = 1e3;
    const real cap = 1e-9; // tau = 1 us
    c.add<vsource>("vin", in, ground_node, waveform_spec::make_step(0.0, 1.0, 0.0, 1e-9));
    c.add<resistor>("r1", in, out, r);
    c.add<capacitor>("c1", out, ground_node, cap);

    tran_options opt;
    opt.tstop = 5e-6;
    opt.dt = 5e-9;
    const tran_result res = transient(c, opt);
    const std::vector<real> v = node_waveform(c, res, "out");
    const real tau = r * cap;
    for (std::size_t i = 0; i < res.time.size(); i += 40) {
        const real expected = 1.0 - std::exp(-std::max(res.time[i] - 1e-9, 0.0) / tau);
        EXPECT_NEAR(v[i], expected, 5e-3) << "t=" << res.time[i];
    }
}

TEST(tran, rc_discharge_through_pulse)
{
    circuit c;
    const node_id in = c.node("in");
    const node_id out = c.node("out");
    c.add<vsource>("vin", in, ground_node,
                   waveform_spec::make_pulse(0.0, 1.0, 1e-6, 1e-8, 1e-8, 2e-6, 1e30));
    c.add<resistor>("r1", in, out, 1e3);
    c.add<capacitor>("c1", out, ground_node, 1e-10); // tau = 100 ns
    tran_options opt;
    opt.tstop = 6e-6;
    opt.dt = 1e-8;
    const tran_result res = transient(c, opt);
    const std::vector<real> v = node_waveform(c, res, "out");
    // Fully charged by 2.5 us, fully discharged by 5 us.
    const auto at = [&](real t) {
        std::size_t best = 0;
        for (std::size_t i = 0; i < res.time.size(); ++i)
            if (std::fabs(res.time[i] - t) < std::fabs(res.time[best] - t))
                best = i;
        return v[best];
    };
    EXPECT_NEAR(at(2.9e-6), 1.0, 1e-2);
    EXPECT_NEAR(at(5.9e-6), 0.0, 1e-2);
}

TEST(tran, series_rlc_underdamped_ringing)
{
    circuit c;
    const node_id in = c.node("in");
    const node_id m = c.node("m");
    const node_id out = c.node("out");
    const real r = 20.0;
    const real l = 1e-6;
    const real cap = 1e-9;
    c.add<vsource>("vin", in, ground_node, waveform_spec::make_step(0.0, 1.0, 0.0, 1e-10));
    c.add<resistor>("r1", in, m, r);
    c.add<inductor>("l1", m, out, l);
    c.add<capacitor>("c1", out, ground_node, cap);

    const real wn = 1.0 / std::sqrt(l * cap);
    const real zeta = r / 2.0 * std::sqrt(cap / l);
    ASSERT_LT(zeta, 1.0);

    tran_options opt;
    opt.tstop = 30.0 / (wn / two_pi);
    opt.dt = opt.tstop / 20000.0;
    const tran_result res = transient(c, opt);
    const std::vector<real> v = node_waveform(c, res, "out");

    const real overshoot = overshoot_percent(v, 0.0, 1.0);
    const real expected = 100.0 * std::exp(-pi * zeta / std::sqrt(1.0 - zeta * zeta));
    EXPECT_NEAR(overshoot, expected, 2.0);

    const real fring = ringing_frequency(res.time, v, 1.0);
    const real fd = wn * std::sqrt(1.0 - zeta * zeta) / two_pi;
    EXPECT_NEAR(fring, fd, 0.05 * fd);
}

TEST(tran, trapezoidal_beats_backward_euler_on_lc)
{
    // A lossless LC tank started from a charged cap must conserve its
    // oscillation amplitude with trapezoidal integration.
    circuit c;
    const node_id top = c.node("top");
    const real l = 1e-6;
    const real cap = 1e-9;
    // Precharge path: current source with initial kick via PWL.
    c.add<isource>("ik", ground_node, top,
                   waveform_spec::make_pwl({0.0, 1e-8, 2e-8}, {1e-3, 1e-3, 0.0}));
    c.add<inductor>("l1", top, ground_node, l);
    c.add<capacitor>("c1", top, ground_node, cap);

    tran_options opt;
    opt.tstop = 3e-6;
    opt.dt = 2e-9;
    const tran_result res = transient(c, opt);
    const std::vector<real> v = node_waveform(c, res, "top");
    // Compare the max amplitude in the first and last thirds.
    real early = 0.0;
    real late = 0.0;
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (res.time[i] < 1e-6)
            early = std::max(early, std::fabs(v[i]));
        if (res.time[i] > 2e-6)
            late = std::max(late, std::fabs(v[i]));
    }
    EXPECT_GT(early, 0.0);
    EXPECT_GT(late, 0.85 * early); // trapezoidal: nearly lossless
}

TEST(tran, sine_source_tracks)
{
    circuit c;
    const node_id in = c.node("in");
    c.add<vsource>("vin", in, ground_node, waveform_spec::make_sine(1.0, 0.5, 1e6));
    c.add<resistor>("r1", in, ground_node, 1e3);
    tran_options opt;
    opt.tstop = 3e-6;
    opt.dt = 2e-9;
    const tran_result res = transient(c, opt);
    const std::vector<real> v = node_waveform(c, res, "in");
    for (std::size_t i = 0; i < v.size(); i += 101) {
        const real expected = 1.0 + 0.5 * std::sin(two_pi * 1e6 * res.time[i]);
        EXPECT_NEAR(v[i], expected, 1e-6);
    }
}

TEST(tran, breakpoints_are_hit_exactly)
{
    circuit c;
    const node_id in = c.node("in");
    c.add<vsource>("vin", in, ground_node,
                   waveform_spec::make_pulse(0.0, 1.0, 1.05e-6, 1e-8, 1e-8, 0.5e-6, 1e30));
    c.add<resistor>("r1", in, ground_node, 1e3);
    tran_options opt;
    opt.tstop = 2e-6;
    opt.dt = 3e-7; // coarse: without breakpoints the edge would be missed
    const tran_result res = transient(c, opt);
    bool found_edge_start = false;
    for (const real t : res.time)
        if (std::fabs(t - 1.05e-6) < 1e-12)
            found_edge_start = true;
    EXPECT_TRUE(found_edge_start);
}

TEST(tran, rejects_bad_tstop)
{
    circuit c;
    const node_id in = c.node("in");
    c.add<vsource>("vin", in, ground_node, 1.0);
    c.add<resistor>("r1", in, ground_node, 1e3);
    tran_options opt;
    opt.tstop = 0.0;
    EXPECT_THROW(transient(c, opt), analysis_error);
}

TEST(tran, waveform_spec_values)
{
    const waveform_spec pulse = waveform_spec::make_pulse(0.0, 2.0, 1.0, 0.5, 0.5, 2.0, 10.0);
    EXPECT_NEAR(pulse.value_at(0.5), 0.0, 1e-12);
    EXPECT_NEAR(pulse.value_at(1.25), 1.0, 1e-12); // mid-rise
    EXPECT_NEAR(pulse.value_at(2.0), 2.0, 1e-12);  // flat top
    EXPECT_NEAR(pulse.value_at(3.75), 1.0, 1e-12); // mid-fall
    EXPECT_NEAR(pulse.value_at(5.0), 0.0, 1e-12);  // back to v1
    EXPECT_NEAR(pulse.value_at(11.25), 1.0, 1e-12); // periodic repeat

    const waveform_spec pwl = waveform_spec::make_pwl({0.0, 1.0, 3.0}, {0.0, 2.0, -2.0});
    EXPECT_NEAR(pwl.value_at(-1.0), 0.0, 1e-12);
    EXPECT_NEAR(pwl.value_at(0.5), 1.0, 1e-12);
    EXPECT_NEAR(pwl.value_at(2.0), 0.0, 1e-12);
    EXPECT_NEAR(pwl.value_at(9.0), -2.0, 1e-12);

    EXPECT_THROW(waveform_spec::make_pwl({0.0, 0.0}, {1.0, 2.0}), circuit_error);
    EXPECT_THROW(waveform_spec::make_pwl({}, {}), circuit_error);
}

} // namespace
