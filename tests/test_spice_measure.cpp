// Waveform measurements: dB/phase, step metrics, Bode margins.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "numeric/interpolation.h"
#include "numeric/rational.h"
#include "spice/measure.h"

namespace {

using namespace acstab;
using namespace acstab::spice;

TEST(measure, db20_values)
{
    EXPECT_NEAR(db20(1.0), 0.0, 1e-12);
    EXPECT_NEAR(db20(10.0), 20.0, 1e-12);
    EXPECT_NEAR(db20(0.01), -40.0, 1e-12);
}

TEST(measure, phase_unwrap_monotone_lag)
{
    // Three cascaded poles accumulate -270 degrees; unwrapping must not
    // fold the phase back.
    const auto h = [](real w) {
        const cplx p{1.0, w};
        return cplx{1.0, 0.0} / (p * p * p);
    };
    std::vector<cplx> resp;
    std::vector<real> freqs = numeric::log_space(0.01, 100.0, 100);
    for (const real w : freqs)
        resp.push_back(h(w));
    const std::vector<real> ph = phase_deg_unwrapped(resp);
    EXPECT_NEAR(ph.front(), 0.0, 2.0);
    EXPECT_NEAR(ph.back(), -3.0 * 90.0, 3.0);
    for (std::size_t i = 1; i < ph.size(); ++i)
        EXPECT_LE(ph[i], ph[i - 1] + 1e-9);
}

TEST(measure, overshoot_of_damped_sine)
{
    // y(t) = 1 - exp(-z wn t) cos(wd t)/..., sampled analytically.
    const real zeta = 0.3;
    const real wn = 1.0;
    const real wd = wn * std::sqrt(1.0 - zeta * zeta);
    std::vector<real> t;
    std::vector<real> y;
    for (int i = 0; i < 4000; ++i) {
        const real tt = i * 0.01;
        t.push_back(tt);
        y.push_back(1.0
                    - std::exp(-zeta * wn * tt)
                        * (std::cos(wd * tt) + zeta / std::sqrt(1.0 - zeta * zeta)
                               * std::sin(wd * tt)));
    }
    const real os = overshoot_percent(y, 0.0, 1.0);
    EXPECT_NEAR(os, 100.0 * std::exp(-pi * zeta / std::sqrt(1.0 - zeta * zeta)), 0.5);
    const real fr = ringing_frequency(t, y, 1.0);
    EXPECT_NEAR(fr, wd / two_pi, 0.05 * wd / two_pi);
}

TEST(measure, overshoot_negative_going_step)
{
    std::vector<real> y{1.0, 0.5, -0.2, 0.05, 0.0, 0.0};
    // Step from 1 to 0: peak undershoot -0.2 -> overshoot 20 %.
    EXPECT_NEAR(overshoot_percent(y, 1.0, 0.0), 20.0, 1e-9);
}

TEST(measure, final_value_tail_mean)
{
    std::vector<real> y(100, 3.0);
    y[0] = 100.0;
    EXPECT_NEAR(final_value(y), 3.0, 1e-12);
}

TEST(measure, settling_time)
{
    std::vector<real> t;
    std::vector<real> y;
    for (int i = 0; i <= 100; ++i) {
        t.push_back(static_cast<real>(i));
        y.push_back(i < 40 ? 2.0 : 1.0); // settles exactly at t = 40
    }
    EXPECT_NEAR(settling_time(t, y, 1.0), 40.0, 1e-12);
}

TEST(measure, margins_of_integrator_loop)
{
    // L(s) = wc/s: crossover at wc with 90 degrees of phase margin and no
    // -180 crossing.
    const real fc = 1e4;
    std::vector<real> freqs = numeric::log_space(1e2, 1e6, 200);
    std::vector<cplx> loop;
    for (const real f : freqs)
        loop.push_back(cplx{0.0, -1.0} * (fc / f));
    const bode_margins m = margins(freqs, loop);
    ASSERT_TRUE(m.has_unity_crossing);
    EXPECT_NEAR(m.unity_freq_hz, fc, fc * 0.02);
    EXPECT_NEAR(m.phase_margin_deg, 90.0, 0.5);
    EXPECT_FALSE(m.has_phase_crossing);
}

TEST(measure, margins_of_three_pole_loop)
{
    // L(s) = 100 / (1 + s/w0)^3: analytic PM/GM available.
    const real f0 = 1e3;
    std::vector<real> freqs = numeric::log_space(10.0, 1e6, 400);
    std::vector<cplx> loop;
    for (const real f : freqs) {
        const cplx den = std::pow(cplx{1.0, f / f0}, 3);
        loop.push_back(cplx{100.0, 0.0} / den);
    }
    const bode_margins m = margins(freqs, loop);
    ASSERT_TRUE(m.has_unity_crossing);
    ASSERT_TRUE(m.has_phase_crossing);
    // |L| = 1 at w/w0 = sqrt(100^(2/3) - 1) ~ 4.53.
    EXPECT_NEAR(m.unity_freq_hz, 4.53e3, 0.1e3);
    // Phase -180 at w/w0 = tan(60 deg) = sqrt(3).
    EXPECT_NEAR(m.phase_cross_freq_hz, std::sqrt(3.0) * f0, 0.05e3);
    // GM = -20log10(100/8) = -21.9 -> gain margin is negative (unstable).
    EXPECT_NEAR(m.gain_margin_db, -20.0 * std::log10(100.0 / 8.0), 0.5);
}

TEST(measure, phase_margin_immune_to_pre_window_wrap)
{
    // Three real poles at 1k/10k/100k with gain 1e4: the phase wraps
    // through -180 degrees at ~33 kHz, well below the ~208 kHz crossover,
    // so the loop is unstable with PM ~ -61 degrees. A sweep window that
    // opens ABOVE the wrap (fstart = 100 kHz, true phase there ~ -219)
    // anchors the unwrap 360 degrees high; the margin must still come out
    // in (-180, 180] and match the full-window answer.
    const auto loop_at = [](real f) {
        const cplx s{0.0, two_pi * f};
        const auto pole = [&s](real p) { return 1.0 / (1.0 + s / (two_pi * p)); };
        return 1e4 * pole(1e3) * pole(1e4) * pole(1e5);
    };
    const auto sweep_margins = [&](real fstart) {
        const std::vector<real> freqs = numeric::log_grid(fstart, 1e9, 50);
        std::vector<cplx> loop(freqs.size());
        for (std::size_t i = 0; i < freqs.size(); ++i)
            loop[i] = loop_at(freqs[i]);
        return margins(freqs, loop);
    };

    const bode_margins full = sweep_margins(1e2);
    ASSERT_TRUE(full.has_unity_crossing);
    EXPECT_NEAR(full.phase_margin_deg, -61.3, 1.0);

    const bode_margins clipped = sweep_margins(1e5);
    ASSERT_TRUE(clipped.has_unity_crossing);
    EXPECT_NEAR(clipped.unity_freq_hz, full.unity_freq_hz, full.unity_freq_hz * 0.02);
    // The seed code reported 298.7 degrees here (-61.3 + 360).
    EXPECT_NEAR(clipped.phase_margin_deg, full.phase_margin_deg, 1.0);
    EXPECT_LE(clipped.phase_margin_deg, 180.0);
    EXPECT_GT(clipped.phase_margin_deg, -180.0);
}

TEST(measure, gain_margin_found_modulo_360)
{
    // Synthetic loop whose true phase rises from -210 through -150 (so it
    // crosses -180). The first sample's principal-value argument is +150,
    // anchoring the unwrap 360 degrees high: the unwrapped samples cross
    // +180 instead, and the -180 "mod 360" crossing must still be
    // reported with the right frequency and gain margin.
    std::vector<real> freqs;
    std::vector<cplx> loop;
    const std::size_t n = 101;
    for (std::size_t i = 0; i < n; ++i) {
        const real t = static_cast<real>(i) / static_cast<real>(n - 1);
        freqs.push_back(1e3 * std::pow(10.0, 2.0 * t)); // 1k .. 100k
        const real phase_deg = -210.0 + 60.0 * t;       // true -210 -> -150
        const real mag = std::pow(10.0, -t);            // 0 dB -> -20 dB
        loop.push_back(std::polar(mag, phase_deg * pi / 180.0));
    }
    const bode_margins m = margins(freqs, loop);
    ASSERT_TRUE(m.has_phase_crossing);
    // Phase passes +180 (= -180 mod 360) at t = 0.5 -> f = 10 kHz, where
    // |L| = -10 dB, i.e. a gain margin of +10 dB.
    EXPECT_NEAR(m.phase_cross_freq_hz, 1e4, 0.05e4);
    EXPECT_NEAR(m.gain_margin_db, 10.0, 0.3);
}

TEST(measure, error_handling)
{
    std::vector<real> empty;
    EXPECT_THROW(overshoot_percent(empty, 0.0, 1.0), analysis_error);
    std::vector<real> one{1.0};
    EXPECT_THROW(overshoot_percent(one, 0.5, 0.5), analysis_error);
    EXPECT_THROW(final_value(empty), analysis_error);
    std::vector<real> t{0.0, 1.0};
    std::vector<cplx> h{{1.0, 0.0}};
    EXPECT_THROW(margins(t, h), analysis_error);
}

} // namespace
