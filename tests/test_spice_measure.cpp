// Waveform measurements: dB/phase, step metrics, Bode margins.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "numeric/interpolation.h"
#include "numeric/rational.h"
#include "spice/measure.h"

namespace {

using namespace acstab;
using namespace acstab::spice;

TEST(measure, db20_values)
{
    EXPECT_NEAR(db20(1.0), 0.0, 1e-12);
    EXPECT_NEAR(db20(10.0), 20.0, 1e-12);
    EXPECT_NEAR(db20(0.01), -40.0, 1e-12);
}

TEST(measure, phase_unwrap_monotone_lag)
{
    // Three cascaded poles accumulate -270 degrees; unwrapping must not
    // fold the phase back.
    const auto h = [](real w) {
        const cplx p{1.0, w};
        return cplx{1.0, 0.0} / (p * p * p);
    };
    std::vector<cplx> resp;
    std::vector<real> freqs = numeric::log_space(0.01, 100.0, 100);
    for (const real w : freqs)
        resp.push_back(h(w));
    const std::vector<real> ph = phase_deg_unwrapped(resp);
    EXPECT_NEAR(ph.front(), 0.0, 2.0);
    EXPECT_NEAR(ph.back(), -3.0 * 90.0, 3.0);
    for (std::size_t i = 1; i < ph.size(); ++i)
        EXPECT_LE(ph[i], ph[i - 1] + 1e-9);
}

TEST(measure, overshoot_of_damped_sine)
{
    // y(t) = 1 - exp(-z wn t) cos(wd t)/..., sampled analytically.
    const real zeta = 0.3;
    const real wn = 1.0;
    const real wd = wn * std::sqrt(1.0 - zeta * zeta);
    std::vector<real> t;
    std::vector<real> y;
    for (int i = 0; i < 4000; ++i) {
        const real tt = i * 0.01;
        t.push_back(tt);
        y.push_back(1.0
                    - std::exp(-zeta * wn * tt)
                        * (std::cos(wd * tt) + zeta / std::sqrt(1.0 - zeta * zeta)
                               * std::sin(wd * tt)));
    }
    const real os = overshoot_percent(y, 0.0, 1.0);
    EXPECT_NEAR(os, 100.0 * std::exp(-pi * zeta / std::sqrt(1.0 - zeta * zeta)), 0.5);
    const real fr = ringing_frequency(t, y, 1.0);
    EXPECT_NEAR(fr, wd / two_pi, 0.05 * wd / two_pi);
}

TEST(measure, overshoot_negative_going_step)
{
    std::vector<real> y{1.0, 0.5, -0.2, 0.05, 0.0, 0.0};
    // Step from 1 to 0: peak undershoot -0.2 -> overshoot 20 %.
    EXPECT_NEAR(overshoot_percent(y, 1.0, 0.0), 20.0, 1e-9);
}

TEST(measure, final_value_tail_mean)
{
    std::vector<real> y(100, 3.0);
    y[0] = 100.0;
    EXPECT_NEAR(final_value(y), 3.0, 1e-12);
}

TEST(measure, settling_time)
{
    std::vector<real> t;
    std::vector<real> y;
    for (int i = 0; i <= 100; ++i) {
        t.push_back(static_cast<real>(i));
        y.push_back(i < 40 ? 2.0 : 1.0); // settles exactly at t = 40
    }
    EXPECT_NEAR(settling_time(t, y, 1.0), 40.0, 1e-12);
}

TEST(measure, margins_of_integrator_loop)
{
    // L(s) = wc/s: crossover at wc with 90 degrees of phase margin and no
    // -180 crossing.
    const real fc = 1e4;
    std::vector<real> freqs = numeric::log_space(1e2, 1e6, 200);
    std::vector<cplx> loop;
    for (const real f : freqs)
        loop.push_back(cplx{0.0, -1.0} * (fc / f));
    const bode_margins m = margins(freqs, loop);
    ASSERT_TRUE(m.has_unity_crossing);
    EXPECT_NEAR(m.unity_freq_hz, fc, fc * 0.02);
    EXPECT_NEAR(m.phase_margin_deg, 90.0, 0.5);
    EXPECT_FALSE(m.has_phase_crossing);
}

TEST(measure, margins_of_three_pole_loop)
{
    // L(s) = 100 / (1 + s/w0)^3: analytic PM/GM available.
    const real f0 = 1e3;
    std::vector<real> freqs = numeric::log_space(10.0, 1e6, 400);
    std::vector<cplx> loop;
    for (const real f : freqs) {
        const cplx den = std::pow(cplx{1.0, f / f0}, 3);
        loop.push_back(cplx{100.0, 0.0} / den);
    }
    const bode_margins m = margins(freqs, loop);
    ASSERT_TRUE(m.has_unity_crossing);
    ASSERT_TRUE(m.has_phase_crossing);
    // |L| = 1 at w/w0 = sqrt(100^(2/3) - 1) ~ 4.53.
    EXPECT_NEAR(m.unity_freq_hz, 4.53e3, 0.1e3);
    // Phase -180 at w/w0 = tan(60 deg) = sqrt(3).
    EXPECT_NEAR(m.phase_cross_freq_hz, std::sqrt(3.0) * f0, 0.05e3);
    // GM = -20log10(100/8) = -21.9 -> gain margin is negative (unstable).
    EXPECT_NEAR(m.gain_margin_db, -20.0 * std::log10(100.0 / 8.0), 0.5);
}

TEST(measure, error_handling)
{
    std::vector<real> empty;
    EXPECT_THROW(overshoot_percent(empty, 0.0, 1.0), analysis_error);
    std::vector<real> one{1.0};
    EXPECT_THROW(overshoot_percent(one, 0.5, 0.5), analysis_error);
    EXPECT_THROW(final_value(empty), analysis_error);
    std::vector<real> t{0.0, 1.0};
    std::vector<cplx> h{{1.0, 0.0}};
    EXPECT_THROW(margins(t, h), analysis_error);
}

} // namespace
