// The stability analyzer: single-node and all-nodes modes, linearity
// invariances, loop grouping, reports.
#include <gtest/gtest.h>

#include <cmath>

#include "circuits/rlc.h"
#include "common/error.h"
#include "core/analyzer.h"
#include "core/report.h"
#include "spice/circuit.h"
#include "spice/devices/passive.h"
#include "spice/devices/sources.h"

namespace {

using namespace acstab;
using namespace acstab::core;

stability_options tank_options()
{
    stability_options opt;
    opt.sweep.fstart = 1e4;
    opt.sweep.fstop = 1e8;
    opt.sweep.points_per_decade = 50;
    return opt;
}

TEST(analyzer, rlc_tank_single_node)
{
    spice::circuit c;
    circuits::add_parallel_rlc_tank(c, "tank", 0.25, 2e6);
    stability_analyzer an(c, tank_options());
    const node_stability ns = an.analyze_node("tank");
    ASSERT_TRUE(ns.has_peak);
    EXPECT_TRUE(ns.is_underdamped);
    EXPECT_NEAR(ns.dominant.freq_hz, 2e6, 0.04e6);
    EXPECT_NEAR(ns.dominant.value, -16.0, 0.8);
    EXPECT_NEAR(ns.zeta, 0.25, 0.01);
    EXPECT_NEAR(ns.phase_margin_est_deg, 25.0, 1.0);
}

TEST(analyzer, stimulus_amplitude_invariance)
{
    // Linearity: the stability plot cannot depend on the stimulus size.
    spice::circuit c;
    circuits::add_parallel_rlc_tank(c, "tank", 0.2, 1e6);
    stability_options opt = tank_options();
    opt.stimulus_amps = 1.0;
    stability_analyzer a1(c, opt);
    const node_stability n1 = a1.analyze_node("tank");
    opt.stimulus_amps = 1e-6;
    stability_analyzer a2(c, opt);
    const node_stability n2 = a2.analyze_node("tank");
    ASSERT_TRUE(n1.has_peak);
    ASSERT_TRUE(n2.has_peak);
    EXPECT_NEAR(n1.dominant.value, n2.dominant.value, 1e-6 * std::fabs(n1.dominant.value));
    EXPECT_NEAR(n1.dominant.freq_hz, n2.dominant.freq_hz, 1.0);
}

TEST(analyzer, impedance_scaling_invariance)
{
    // Scaling all impedances by k leaves zeta and fn unchanged.
    const auto run = [](real c_farads) {
        spice::circuit c;
        circuits::add_parallel_rlc_tank(c, "tank", 0.3, 1e6, c_farads);
        stability_analyzer an(c, tank_options());
        return an.analyze_node("tank");
    };
    const node_stability a = run(1e-9);
    const node_stability b = run(1e-7);
    ASSERT_TRUE(a.has_peak);
    ASSERT_TRUE(b.has_peak);
    EXPECT_NEAR(a.dominant.value, b.dominant.value, 0.02 * std::fabs(a.dominant.value));
    EXPECT_NEAR(a.dominant.freq_hz, b.dominant.freq_hz, 0.01 * a.dominant.freq_hz);
}

TEST(analyzer, single_node_and_all_nodes_agree)
{
    // The probe-insertion path and the factored multi-RHS path are
    // algebraically identical; their results must match tightly.
    spice::circuit c;
    circuits::add_parallel_rlc_tank(c, "tank", 0.2, 1e6);
    stability_analyzer an(c, tank_options());
    const node_stability single = an.analyze_node("tank");
    const stability_report all = an.analyze_all_nodes();
    ASSERT_TRUE(single.has_peak);
    ASSERT_EQ(all.nodes.size(), 1u);
    ASSERT_TRUE(all.nodes[0].has_peak);
    EXPECT_NEAR(single.dominant.value, all.nodes[0].dominant.value,
                1e-9 * std::fabs(single.dominant.value));
    EXPECT_NEAR(single.dominant.freq_hz, all.nodes[0].dominant.freq_hz, 1e-3);
}

TEST(analyzer, parallel_threads_match_serial)
{
    spice::circuit c;
    circuits::add_parallel_rlc_tank(c, "t1", 0.2, 1e5);
    circuits::add_parallel_rlc_tank(c, "t2", 0.4, 1e7);
    stability_options opt = tank_options();
    opt.threads = 1;
    stability_analyzer serial(c, opt);
    const stability_report r1 = serial.analyze_all_nodes();
    opt.threads = 4;
    stability_analyzer parallel(c, opt);
    const stability_report r2 = parallel.analyze_all_nodes();
    ASSERT_EQ(r1.nodes.size(), r2.nodes.size());
    for (std::size_t i = 0; i < r1.nodes.size(); ++i) {
        EXPECT_EQ(r1.nodes[i].node, r2.nodes[i].node);
        EXPECT_NEAR(r1.nodes[i].dominant.value, r2.nodes[i].dominant.value, 1e-12);
    }
}

TEST(analyzer, two_tanks_grouped_into_two_loops)
{
    spice::circuit c;
    circuits::add_parallel_rlc_tank(c, "t1", 0.2, 1e5);
    circuits::add_parallel_rlc_tank(c, "t2", 0.4, 1e7);
    stability_analyzer an(c, tank_options());
    const stability_report rep = an.analyze_all_nodes();
    ASSERT_EQ(rep.nodes.size(), 2u);
    ASSERT_EQ(rep.loops.size(), 2u);
    EXPECT_NEAR(rep.loops[0].freq_hz, 1e5, 3e3);
    EXPECT_NEAR(rep.loops[1].freq_hz, 1e7, 3e5);
    // Sorted ascending by natural frequency like the paper's Table 2.
    EXPECT_EQ(rep.nodes[rep.loops[0].members[0]].node, "t1");
    EXPECT_EQ(rep.nodes[rep.loops[1].members[0]].node, "t2");
}

TEST(analyzer, coupled_tank_nodes_group_into_one_loop)
{
    // Two nodes of the same physical loop (tank + series-R tap) must land
    // in the same frequency group.
    spice::circuit c;
    circuits::add_parallel_rlc_tank(c, "tank", 0.2, 1e6);
    const spice::node_id tap = c.node("tap");
    c.add<spice::resistor>("rtap", *c.find_node("tank"), tap, 10.0);
    c.add<spice::capacitor>("ctap", tap, spice::ground_node, 1e-13);
    stability_analyzer an(c, tank_options());
    const stability_report rep = an.analyze_all_nodes();
    ASSERT_EQ(rep.nodes.size(), 2u);
    ASSERT_EQ(rep.loops.size(), 1u);
    EXPECT_EQ(rep.loops[0].members.size(), 2u);
}

TEST(analyzer, forced_nodes_are_skipped)
{
    spice::circuit c;
    circuits::add_parallel_rlc_tank(c, "tank", 0.2, 1e6);
    const spice::node_id vin = c.node("vin");
    c.add<spice::vsource>("v1", vin, spice::ground_node, 1.0);
    c.add<spice::resistor>("rb", vin, *c.find_node("tank"), 1e6);
    stability_analyzer an(c, tank_options());
    const stability_report rep = an.analyze_all_nodes();
    ASSERT_EQ(rep.skipped_nodes.size(), 1u);
    EXPECT_EQ(rep.skipped_nodes[0], "vin");
    EXPECT_THROW((void)an.analyze_node("nope"), analysis_error);
    EXPECT_THROW((void)an.analyze_node("0"), analysis_error);
}

TEST(analyzer, probe_is_removed_after_run)
{
    spice::circuit c;
    circuits::add_parallel_rlc_tank(c, "tank", 0.2, 1e6);
    stability_analyzer an(c, tank_options());
    const std::size_t before = c.devices().size();
    (void)an.analyze_node("tank");
    EXPECT_EQ(c.devices().size(), before);
}

TEST(analyzer, group_loops_tolerance)
{
    std::vector<node_stability> nodes(3);
    for (auto& n : nodes) {
        n.has_peak = true;
        n.dominant.kind = peak_kind::complex_pole;
    }
    nodes[0].dominant.freq_hz = 1.00e6;
    nodes[0].dominant.value = -10.0;
    nodes[1].dominant.freq_hz = 1.08e6;
    nodes[1].dominant.value = -8.0;
    nodes[2].dominant.freq_hz = 2.0e6;
    nodes[2].dominant.value = -4.0;
    const auto loops = group_loops(nodes, 0.12);
    ASSERT_EQ(loops.size(), 2u);
    EXPECT_EQ(loops[0].members.size(), 2u);
    EXPECT_EQ(loops[1].members.size(), 1u);
    // Representative frequency is the strongest member's fn.
    EXPECT_NEAR(loops[0].freq_hz, 1.00e6, 1.0);
}

TEST(report, all_nodes_text_contains_loops_and_flags)
{
    spice::circuit c;
    circuits::add_parallel_rlc_tank(c, "t1", 0.2, 1e5);
    circuits::add_parallel_rlc_tank(c, "t2", 0.4, 1e7);
    stability_analyzer an(c, tank_options());
    const stability_report rep = an.analyze_all_nodes();
    const std::string text = format_all_nodes_report(rep);
    EXPECT_NE(text.find("Loop at 100"), std::string::npos);
    EXPECT_NE(text.find("Loop at 10M"), std::string::npos);
    EXPECT_NE(text.find("t1"), std::string::npos);
    EXPECT_NE(text.find("t2"), std::string::npos);

    const std::string csv = format_csv(rep);
    EXPECT_NE(csv.find("node,peak,natural_frequency_hz"), std::string::npos);
    EXPECT_NE(csv.find("t1,"), std::string::npos);

    const std::string annotated = annotate_circuit(c, rep);
    EXPECT_NE(annotated.find("r_t1"), std::string::npos);
    EXPECT_NE(annotated.find("P="), std::string::npos);

    const std::string summary = format_node_summary(rep.nodes[0]);
    EXPECT_NE(summary.find("performance index"), std::string::npos);
    EXPECT_NE(summary.find("damping ratio"), std::string::npos);
}

} // namespace
