// Device-level checks: stamps, models, small-signal parameters, polarity.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "spice/circuit.h"
#include "spice/dc_analysis.h"
#include "spice/devices/bjt.h"
#include "spice/devices/diode.h"
#include "spice/devices/junction.h"
#include "spice/devices/mosfet.h"
#include "spice/devices/passive.h"
#include "spice/devices/sources.h"

namespace {

using namespace acstab;
using namespace acstab::spice;

TEST(device, resistor_stamp_pattern)
{
    circuit c;
    const node_id a = c.node("a");
    const node_id b = c.node("b");
    auto& r = c.add<resistor>("r1", a, b, 100.0);
    c.finalize();
    system_builder<real> builder(c.unknown_count());
    std::vector<real> x(c.unknown_count(), 0.0);
    stamp_params p;
    r.stamp_dc(x, p, builder);
    const auto m = builder.matrix().to_dense();
    EXPECT_NEAR(m(0, 0), 0.01, 1e-15);
    EXPECT_NEAR(m(1, 1), 0.01, 1e-15);
    EXPECT_NEAR(m(0, 1), -0.01, 1e-15);
    EXPECT_NEAR(m(1, 0), -0.01, 1e-15);
}

TEST(device, grounded_stamps_are_dropped)
{
    circuit c;
    const node_id a = c.node("a");
    auto& r = c.add<resistor>("r1", a, ground_node, 50.0);
    c.finalize();
    system_builder<real> builder(c.unknown_count());
    std::vector<real> x(c.unknown_count(), 0.0);
    stamp_params p;
    r.stamp_dc(x, p, builder);
    const auto m = builder.matrix().to_dense();
    EXPECT_NEAR(m(0, 0), 0.02, 1e-15); // only the (a,a) entry survives
}

TEST(device, parameter_validation)
{
    circuit c;
    const node_id a = c.node("a");
    EXPECT_THROW(c.add<resistor>("rbad", a, ground_node, -1.0), circuit_error);
    EXPECT_THROW(c.add<resistor>("rzero", a, ground_node, 0.0), circuit_error);
    EXPECT_THROW(c.add<capacitor>("cbad", a, ground_node, -1e-12), circuit_error);
    EXPECT_THROW(c.add<inductor>("lbad", a, ground_node, 0.0), circuit_error);
    EXPECT_THROW(c.add<mosfet>("mbad", a, a, a, a, mosfet_model{}, 0.0, 1e-6), circuit_error);
}

TEST(device, duplicate_name_rejected)
{
    circuit c;
    const node_id a = c.node("a");
    c.add<resistor>("r1", a, ground_node, 50.0);
    EXPECT_THROW(c.add<resistor>("r1", a, ground_node, 60.0), circuit_error);
}

TEST(device, remove_device)
{
    circuit c;
    const node_id a = c.node("a");
    c.add<resistor>("r1", a, ground_node, 50.0);
    c.add<resistor>("r2", a, ground_node, 70.0);
    c.remove_device("r1");
    EXPECT_EQ(c.find_device("r1"), nullptr);
    EXPECT_NE(c.find_device("r2"), nullptr);
    EXPECT_THROW(c.remove_device("r1"), circuit_error);
}

TEST(junction, pnjlim_clamps_big_steps)
{
    const real vt = thermal_voltage();
    const real vcrit = junction_vcrit(1e-14, vt);
    // Huge jump above vcrit is log-compressed.
    const real limited = pnjlim(5.0, 0.6, vt, vcrit);
    EXPECT_LT(limited, 0.8);
    EXPECT_GT(limited, 0.6);
    // Small steps pass through.
    EXPECT_NEAR(pnjlim(0.62, 0.6, vt, vcrit), 0.62, 1e-15);
    // Negative voltages pass through.
    EXPECT_NEAR(pnjlim(-3.0, 0.0, vt, vcrit), -3.0, 1e-15);
}

TEST(junction, capacitance_model)
{
    // Below fc*vj: classic power law; above: linearized, continuous.
    const real cj0 = 1e-12;
    const real vj = 0.8;
    const real m = 0.5;
    EXPECT_NEAR(junction_capacitance(0.0, cj0, vj, m), cj0, 1e-18);
    EXPECT_NEAR(junction_capacitance(-0.8, cj0, vj, m), cj0 / std::sqrt(2.0), 1e-18);
    const real at_fc = junction_capacitance(0.4 - 1e-9, cj0, vj, m);
    const real above_fc = junction_capacitance(0.4 + 1e-9, cj0, vj, m);
    EXPECT_NEAR(at_fc, above_fc, 1e-17);
    // Monotonically increasing in forward bias.
    EXPECT_GT(junction_capacitance(0.7, cj0, vj, m), junction_capacitance(0.5, cj0, vj, m));
}

TEST(junction, exp_overflow_guard)
{
    const auto jc = junction_exp(10.0, 1e-14, thermal_voltage());
    EXPECT_TRUE(std::isfinite(jc.i));
    EXPECT_TRUE(std::isfinite(jc.g));
    EXPECT_GT(jc.g, 0.0);
}

TEST(bjt, small_signal_gm_equals_ic_over_vt)
{
    circuit c;
    const node_id vcc = c.node("vcc");
    const node_id b = c.node("b");
    const node_id col = c.node("col");
    c.add<vsource>("vcc_s", vcc, ground_node, 5.0);
    c.add<vsource>("vb", b, ground_node, 0.65);
    bjt_model npn;
    npn.is = 1e-16;
    npn.bf = 100.0;
    auto& q = c.add<bjt>("q1", col, b, ground_node, npn);
    c.add<resistor>("rc", vcc, col, 10e3);
    const dc_result op = dc_operating_point(c);
    const bjt_small_signal ss = q.small_signal(op.solution);
    EXPECT_GT(ss.ic, 1e-6);
    EXPECT_NEAR(ss.gm, ss.ic / thermal_voltage(), ss.gm * 1e-3);
    EXPECT_NEAR(ss.gpi, ss.gm / npn.bf, ss.gpi * 1e-3);
}

TEST(bjt, early_effect_gives_output_conductance)
{
    bjt_model with_vaf;
    with_vaf.vaf = 50.0;
    bjt_model without = with_vaf;
    without.vaf = 0.0;

    const auto run = [](const bjt_model& m) {
        circuit c;
        const node_id vcc = c.node("vcc");
        const node_id b = c.node("b");
        const node_id col = c.node("col");
        c.add<vsource>("vcc_s", vcc, ground_node, 5.0);
        c.add<vsource>("vb", b, ground_node, 0.65);
        auto& q = c.add<bjt>("q1", col, b, ground_node, m);
        c.add<resistor>("rc", vcc, col, 10e3);
        const dc_result op = dc_operating_point(c);
        return q.small_signal(op.solution).go;
    };
    EXPECT_GT(run(with_vaf), 10.0 * std::max(run(without), 1e-15));
}

TEST(bjt, pnp_mirror_symmetry)
{
    // A PNP diode from the 5 V rail must bias near vdd - 0.6..0.7.
    circuit c;
    const node_id vcc = c.node("vcc");
    const node_id d = c.node("d");
    c.add<vsource>("vcc_s", vcc, ground_node, 5.0);
    bjt_model pnp;
    pnp.polarity = bjt_polarity::pnp;
    pnp.is = 1e-16;
    c.add<bjt>("q1", d, d, vcc, pnp);
    c.add<resistor>("rsink", d, ground_node, 43e3); // ~0.1 mA
    const dc_result op = dc_operating_point(c);
    const real vd = node_voltage(c, op.solution, "d");
    EXPECT_GT(vd, 4.2);
    EXPECT_LT(vd, 4.5);
}

TEST(bjt, terminal_currents_sum_to_zero)
{
    circuit c;
    const node_id vcc = c.node("vcc");
    const node_id b = c.node("b");
    const node_id col = c.node("col");
    c.add<vsource>("vcc_s", vcc, ground_node, 3.0);
    c.add<vsource>("vb", b, ground_node, 0.68);
    bjt_model npn;
    auto& q = c.add<bjt>("q1", col, b, ground_node, npn);
    c.add<resistor>("rc", vcc, col, 5e3);
    const dc_result op = dc_operating_point(c);
    const bjt_small_signal ss = q.small_signal(op.solution);
    // ie = -(ic + ib) is implicit in the model; check ic/ib ratio ~ beta.
    EXPECT_NEAR(ss.ic / ss.ib, npn.bf, npn.bf * 0.05);
}

TEST(mosfet, region_classification)
{
    mosfet_model nm;
    nm.vto = 0.7;
    nm.kp = 100e-6;
    nm.lambda = 0.0;
    nm.gamma = 0.0;
    circuit c;
    auto& m = c.add<mosfet>("m1", c.node("d"), c.node("g"), ground_node, ground_node, nm,
                            10e-6, 1e-6);
    c.finalize();
    std::vector<real> x(c.unknown_count(), 0.0);
    const auto at = [&](real vg, real vd) {
        x[static_cast<std::size_t>(*c.find_node("g"))] = vg;
        x[static_cast<std::size_t>(*c.find_node("d"))] = vd;
        return m.small_signal(x);
    };
    EXPECT_EQ(at(0.3, 2.0).region, 0); // cutoff
    EXPECT_EQ(at(1.7, 0.3).region, 1); // triode (vov = 1.0 > vds)
    EXPECT_EQ(at(1.2, 2.0).region, 2); // saturation
    // Saturation current value.
    EXPECT_NEAR(at(1.7, 2.0).id, 0.5 * 100e-6 * 10.0 * 1.0, 1e-9);
    // Triode current value at vds = 0.3.
    EXPECT_NEAR(at(1.7, 0.3).id, 100e-6 * 10.0 * (1.0 * 0.3 - 0.045), 1e-9);
}

TEST(mosfet, drain_source_reversal_is_symmetric)
{
    mosfet_model nm;
    nm.vto = 0.7;
    nm.kp = 100e-6;
    nm.lambda = 0.0;
    nm.gamma = 0.0;
    circuit c;
    auto& m = c.add<mosfet>("m1", c.node("d"), c.node("g"), c.node("s"), ground_node, nm,
                            10e-6, 1e-6);
    c.finalize();
    std::vector<real> x(c.unknown_count(), 0.0);
    const auto id_at = [&](real vd, real vg, real vs) {
        x[static_cast<std::size_t>(*c.find_node("d"))] = vd;
        x[static_cast<std::size_t>(*c.find_node("g"))] = vg;
        x[static_cast<std::size_t>(*c.find_node("s"))] = vs;
        return m.small_signal(x).id;
    };
    // Swapping drain and source negates the current.
    EXPECT_NEAR(id_at(0.2, 1.5, 0.0), -id_at(0.0, 1.5, 0.2), 1e-12);
}

TEST(mosfet, body_effect_raises_threshold)
{
    mosfet_model nm;
    nm.vto = 0.7;
    nm.kp = 100e-6;
    nm.lambda = 0.0;
    nm.gamma = 0.5;
    nm.phi = 0.7;
    circuit c;
    auto& m = c.add<mosfet>("m1", c.node("d"), c.node("g"), c.node("s"), c.node("b"), nm,
                            10e-6, 1e-6);
    c.finalize();
    std::vector<real> x(c.unknown_count(), 0.0);
    const auto id_at = [&](real vb) {
        x[static_cast<std::size_t>(*c.find_node("d"))] = 2.0;
        x[static_cast<std::size_t>(*c.find_node("g"))] = 1.5;
        x[static_cast<std::size_t>(*c.find_node("b"))] = vb;
        return m.small_signal(x).id;
    };
    // Reverse body bias (vb < vs = 0) reduces the current.
    EXPECT_LT(id_at(-2.0), id_at(0.0));
    EXPECT_GT(id_at(-2.0), 0.0);
}

TEST(mosfet, meyer_caps_by_region)
{
    mosfet_model nm;
    nm.vto = 0.7;
    nm.kp = 100e-6;
    nm.cox = 2e-3;
    nm.cgso = 0.0;
    nm.cgdo = 0.0;
    nm.gamma = 0.0;
    circuit c;
    auto& m = c.add<mosfet>("m1", c.node("d"), c.node("g"), ground_node, ground_node, nm,
                            10e-6, 1e-6);
    c.finalize();
    std::vector<real> x(c.unknown_count(), 0.0);
    const real cox_total = 2e-3 * 10e-6 * 1e-6;
    const auto ss_at = [&](real vg, real vd) {
        x[static_cast<std::size_t>(*c.find_node("g"))] = vg;
        x[static_cast<std::size_t>(*c.find_node("d"))] = vd;
        return m.small_signal(x);
    };
    const auto cutoff = ss_at(0.0, 1.0);
    EXPECT_NEAR(cutoff.cgb, cox_total, 1e-20);
    const auto sat = ss_at(1.2, 2.0);
    EXPECT_NEAR(sat.cgs, 2.0 / 3.0 * cox_total, 1e-20);
    EXPECT_NEAR(sat.cgd, 0.0, 1e-20);
    const auto triode = ss_at(2.0, 0.1);
    EXPECT_NEAR(triode.cgs, 0.5 * cox_total, 1e-20);
    EXPECT_NEAR(triode.cgd, 0.5 * cox_total, 1e-20);
}

TEST(diode, capacitance_components)
{
    diode_model dm;
    dm.cj0 = 1e-12;
    dm.tt = 1e-9;
    circuit c;
    auto& d = c.add<diode>("d1", c.node("a"), ground_node, dm);
    c.finalize();
    // Reverse bias: depletion only.
    EXPECT_NEAR(d.capacitance_at(-1.0), junction_capacitance(-1.0, 1e-12, 1.0, 0.5), 1e-20);
    // Forward bias adds diffusion capacitance tt * gd.
    const real cfwd = d.capacitance_at(0.65);
    EXPECT_GT(cfwd, 10.0 * d.capacitance_at(-1.0));
    EXPECT_NEAR(cfwd - junction_capacitance(0.65, 1e-12, 1.0, 0.5),
                1e-9 * d.conductance_at(0.65), 1e-18);
}

TEST(circuit, node_registry)
{
    circuit c;
    const node_id a = c.node("a");
    EXPECT_EQ(c.node("a"), a);
    EXPECT_EQ(c.node("0"), ground_node);
    EXPECT_EQ(c.node("gnd"), ground_node);
    EXPECT_EQ(c.node_name(a), "a");
    EXPECT_EQ(c.node_name(ground_node), "0");
    EXPECT_FALSE(c.find_node("zzz").has_value());
    EXPECT_EQ(c.node_count(), 1u);
}

TEST(circuit, source_forced_nodes_through_chains)
{
    circuit c;
    const node_id a = c.node("a");
    const node_id b = c.node("b");
    const node_id free = c.node("free");
    c.add<vsource>("v1", a, ground_node, 1.0);
    c.add<vsource>("v2", b, a, 1.0); // chained through v1
    c.add<resistor>("r1", b, free, 1e3);
    c.add<resistor>("r2", free, ground_node, 1e3);
    c.finalize();
    const std::vector<bool> forced = c.source_forced_nodes();
    EXPECT_TRUE(forced[static_cast<std::size_t>(a)]);
    EXPECT_TRUE(forced[static_cast<std::size_t>(b)]);
    EXPECT_FALSE(forced[static_cast<std::size_t>(free)]);
}

} // namespace
