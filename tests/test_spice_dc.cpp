// DC operating-point analysis: linear networks with closed-form answers,
// nonlinear bias points, continuation fallbacks and failure modes.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "circuits/bias.h"
#include "spice/circuit.h"
#include "spice/dc_analysis.h"
#include "spice/devices/bjt.h"
#include "spice/devices/controlled.h"
#include "spice/devices/diode.h"
#include "spice/devices/junction.h"
#include "spice/devices/mosfet.h"
#include "spice/devices/passive.h"
#include "spice/devices/sources.h"

namespace {

using namespace acstab;
using namespace acstab::spice;

TEST(dc, resistor_divider)
{
    circuit c;
    const node_id in = c.node("in");
    const node_id mid = c.node("mid");
    c.add<vsource>("v1", in, ground_node, 10.0);
    c.add<resistor>("r1", in, mid, 1e3);
    c.add<resistor>("r2", mid, ground_node, 3e3);
    const dc_result op = dc_operating_point(c);
    EXPECT_NEAR(node_voltage(c, op.solution, "mid"), 7.5, 1e-9);
    EXPECT_NEAR(node_voltage(c, op.solution, "in"), 10.0, 1e-12);
}

TEST(dc, vsource_branch_current)
{
    circuit c;
    const node_id in = c.node("in");
    auto& v1 = c.add<vsource>("v1", in, ground_node, 5.0);
    c.add<resistor>("r1", in, ground_node, 1e3);
    const dc_result op = dc_operating_point(c);
    // Current flows plus->through source->minus: -5 mA out of the source.
    EXPECT_NEAR(op.solution[static_cast<std::size_t>(v1.branch())], -5e-3, 1e-9);
}

TEST(dc, current_source_into_resistor)
{
    circuit c;
    const node_id n = c.node("n");
    c.add<isource>("i1", ground_node, n, 2e-3);
    c.add<resistor>("r1", n, ground_node, 1e3);
    const dc_result op = dc_operating_point(c);
    EXPECT_NEAR(node_voltage(c, op.solution, "n"), 2.0, 1e-9);
}

TEST(dc, inductor_is_short_capacitor_is_open)
{
    circuit c;
    const node_id a = c.node("a");
    const node_id b = c.node("b");
    const node_id d = c.node("d");
    c.add<vsource>("v1", a, ground_node, 4.0);
    c.add<inductor>("l1", a, b, 1e-3);
    c.add<resistor>("r1", b, ground_node, 1e3);
    c.add<capacitor>("c1", b, d, 1e-9);
    c.add<resistor>("r2", d, ground_node, 1e3);
    const dc_result op = dc_operating_point(c);
    EXPECT_NEAR(node_voltage(c, op.solution, "b"), 4.0, 1e-9);  // short
    EXPECT_NEAR(node_voltage(c, op.solution, "d"), 0.0, 1e-6);  // open
}

TEST(dc, controlled_sources)
{
    circuit c;
    const node_id in = c.node("in");
    const node_id e_out = c.node("eo");
    const node_id g_out = c.node("go");
    c.add<vsource>("v1", in, ground_node, 2.0);
    c.add<resistor>("rin", in, ground_node, 1e6);
    c.add<vcvs>("e1", e_out, ground_node, in, ground_node, 3.0);
    c.add<resistor>("re", e_out, ground_node, 1e3);
    c.add<vccs>("gm1", ground_node, g_out, in, ground_node, 1e-3);
    c.add<resistor>("rg", g_out, ground_node, 2e3);
    const dc_result op = dc_operating_point(c);
    EXPECT_NEAR(node_voltage(c, op.solution, "eo"), 6.0, 1e-9);
    EXPECT_NEAR(node_voltage(c, op.solution, "go"), 4.0, 1e-9); // 2 mA * 2 k
}

TEST(dc, current_controlled_sources)
{
    circuit c;
    const node_id a = c.node("a");
    const node_id f_out = c.node("fo");
    const node_id h_out = c.node("ho");
    c.add<vsource>("vsense", a, ground_node, 1.0);
    c.add<resistor>("ra", a, ground_node, 1e3); // sense current -1 mA through vsense
    c.add<cccs>("f1", ground_node, f_out, "vsense", 2.0);
    c.add<resistor>("rf", f_out, ground_node, 1e3);
    c.add<ccvs>("h1", h_out, ground_node, "vsense", 4e3);
    c.add<resistor>("rh", h_out, ground_node, 1e3);
    const dc_result op = dc_operating_point(c);
    // vsense branch current = -1 mA (see vsource_branch_current).
    EXPECT_NEAR(node_voltage(c, op.solution, "fo"), -2.0, 1e-9);
    EXPECT_NEAR(node_voltage(c, op.solution, "ho"), -4.0, 1e-9);
}

TEST(dc, diode_forward_drop)
{
    circuit c;
    const node_id a = c.node("a");
    c.add<vsource>("v1", a, ground_node, 5.0);
    const node_id k = c.node("k");
    c.add<resistor>("r1", a, k, 10e3);
    diode_model dm;
    dm.is = 1e-14;
    c.add<diode>("d1", k, ground_node, dm);
    const dc_result op = dc_operating_point(c);
    const real vd = node_voltage(c, op.solution, "k");
    EXPECT_GT(vd, 0.5);
    EXPECT_LT(vd, 0.75);
    // KCL: resistor current equals diode current.
    const real ir = (5.0 - vd) / 10e3;
    const real id = dm.is * (std::exp(vd / thermal_voltage()) - 1.0);
    EXPECT_NEAR(ir, id, ir * 2e-3);
}

TEST(dc, diode_reverse_blocks)
{
    circuit c;
    const node_id a = c.node("a");
    c.add<vsource>("v1", a, ground_node, -5.0);
    const node_id k = c.node("k");
    c.add<resistor>("r1", a, k, 10e3);
    c.add<diode>("d1", k, ground_node);
    const dc_result op = dc_operating_point(c);
    // Almost the full -5 V appears across the diode.
    EXPECT_LT(node_voltage(c, op.solution, "k"), -4.99);
}

TEST(dc, bjt_current_mirror_ratio)
{
    circuit c;
    const node_id vcc = c.node("vcc");
    const node_id ref = c.node("ref");
    const node_id out = c.node("out");
    c.add<vsource>("vcc_s", vcc, ground_node, 5.0);
    c.add<isource>("iref", vcc, ref, 100e-6);
    bjt_model npn;
    npn.is = 1e-16;
    npn.bf = 200.0;
    c.add<bjt>("q1", ref, ref, ground_node, npn);
    bjt_model npn2 = npn;
    npn2.is = 2e-16; // 2x area
    c.add<bjt>("q2", out, ref, ground_node, npn2);
    c.add<resistor>("rl", vcc, out, 10e3);
    const dc_result op = dc_operating_point(c);
    // Mirror doubles the current: V(out) = 5 - 0.2 mA * 10 k = 3 V.
    EXPECT_NEAR(node_voltage(c, op.solution, "out"), 3.0, 0.1);
}

TEST(dc, mosfet_saturation_current)
{
    circuit c;
    const node_id vdd = c.node("vdd");
    const node_id g = c.node("g");
    const node_id d = c.node("d");
    c.add<vsource>("vdd_s", vdd, ground_node, 5.0);
    c.add<vsource>("vg", g, ground_node, 1.5);
    mosfet_model nm;
    nm.vto = 0.7;
    nm.kp = 100e-6;
    nm.lambda = 0.0;
    nm.gamma = 0.0;
    c.add<mosfet>("m1", d, g, ground_node, ground_node, nm, 20e-6, 2e-6);
    c.add<resistor>("rd", vdd, d, 10e3);
    const dc_result op = dc_operating_point(c);
    // id = 0.5*kp*(W/L)*(vgs-vth)^2 = 0.5*1e-4*10*0.64 = 320 uA.
    EXPECT_NEAR(node_voltage(c, op.solution, "d"), 5.0 - 0.32e-3 * 1e4, 0.02);
}

TEST(dc, pmos_source_follower_polarity)
{
    circuit c;
    const node_id vdd = c.node("vdd");
    const node_id g = c.node("g");
    const node_id s = c.node("s");
    c.add<vsource>("vdd_s", vdd, ground_node, 5.0);
    c.add<vsource>("vg", g, ground_node, 2.5);
    mosfet_model pm;
    pm.polarity = mos_polarity::pmos;
    pm.vto = 0.8;
    pm.kp = 50e-6;
    pm.lambda = 0.0;
    pm.gamma = 0.0;
    // PMOS with source pulled down by a resistor: source settles about
    // one |vgs| above the gate.
    c.add<mosfet>("mp", ground_node, g, s, vdd, pm, 50e-6, 1e-6);
    c.add<resistor>("rs", vdd, s, 10e3);
    const dc_result op = dc_operating_point(c);
    const real vs = node_voltage(c, op.solution, "s");
    EXPECT_GT(vs, 3.3);
    EXPECT_LT(vs, 3.9);
}

TEST(dc, floating_node_resolved_by_gshunt_retry)
{
    circuit c;
    const node_id a = c.node("a");
    const node_id fl = c.node("floating");
    c.add<vsource>("v1", a, ground_node, 1.0);
    c.add<resistor>("r1", a, ground_node, 1e3);
    // This node only connects through a capacitor: singular at DC.
    c.add<capacitor>("c1", a, fl, 1e-12);
    const dc_result op = dc_operating_point(c);
    EXPECT_TRUE(op.used_gshunt);
    EXPECT_NEAR(node_voltage(c, op.solution, "a"), 1.0, 1e-9);
}

TEST(dc, bias_generator_needs_continuation)
{
    // The self-biased reference has a zero-current equilibrium; plain
    // Newton from zero lands there or fails, so continuation must engage
    // and find the intended ~10 uA state.
    circuit c;
    circuits::build_standalone_bias(c);
    const dc_result op = dc_operating_point(c);
    const real vbe = node_voltage(c, op.solution, "b_vbe");
    EXPECT_GT(vbe, 0.55);
    EXPECT_LT(vbe, 0.75);
}

TEST(dc, non_convergence_error_reports_the_attempted_ladder)
{
    // Two ideal sources forcing different voltages onto one node: the MNA
    // system is inconsistent at every continuation rung, so the whole
    // ladder runs dry. The error must say what was tried — each rung's
    // gshunt value and where its Newton loop gave up — not just "did not
    // converge".
    circuit c;
    const node_id n = c.node("n");
    c.add<vsource>("v1", n, ground_node, 1.0);
    c.add<vsource>("v2", n, ground_node, 2.0);
    try {
        (void)dc_operating_point(c);
        FAIL() << "conflicting sources must not converge";
    } catch (const convergence_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("attempted:"), std::string::npos) << what;
        EXPECT_NE(what.find("plain Newton (gshunt=0)"), std::string::npos) << what;
        EXPECT_NE(what.find("gshunt=1e-09"), std::string::npos) << what;
        EXPECT_NE(what.find("singular matrix"), std::string::npos) << what;
        EXPECT_NE(what.find("gmin stepping"), std::string::npos) << what;
        EXPECT_NE(what.find("source stepping"), std::string::npos) << what;
    }
}

TEST(dc, ladder_reports_disabled_strategies)
{
    circuit c;
    const node_id n = c.node("n");
    c.add<vsource>("v1", n, ground_node, 1.0);
    c.add<vsource>("v2", n, ground_node, 2.0);
    dc_options opt;
    opt.allow_gmin_stepping = false;
    opt.allow_source_stepping = false;
    try {
        (void)dc_operating_point(c, opt);
        FAIL() << "conflicting sources must not converge";
    } catch (const convergence_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("gmin stepping: disabled"), std::string::npos) << what;
        EXPECT_NE(what.find("source stepping: disabled"), std::string::npos) << what;
    }
}

TEST(dc, tolerances_are_respected)
{
    circuit c;
    const node_id n = c.node("n");
    c.add<isource>("i1", ground_node, n, 1e-3);
    c.add<resistor>("r1", n, ground_node, 1e3);
    dc_options opt;
    opt.max_iterations = 3; // linear: converges immediately regardless
    const dc_result op = dc_operating_point(c, opt);
    EXPECT_LE(op.iterations, 3);
}

TEST(dc, unknown_node_query_throws)
{
    circuit c;
    const node_id n = c.node("n");
    c.add<isource>("i1", ground_node, n, 1e-3);
    c.add<resistor>("r1", n, ground_node, 1e3);
    const dc_result op = dc_operating_point(c);
    EXPECT_THROW(node_voltage(c, op.solution, "nope"), analysis_error);
}

} // namespace
