// The minimum-degree column pre-ordering (numeric/amd_order.h): the
// permutation must be valid and deterministic on any pattern, degrade to
// something sensible on structures where ordering cannot help, and — the
// reason it exists — beat the nonzero-count heuristic by a wide margin
// on 2-D mesh patterns, where count degenerates to the natural order.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "engine/linearized_snapshot.h"
#include "gen/netlist_gen.h"
#include "numeric/amd_order.h"
#include "numeric/sparse_factor.h"
#include "spice/dc_analysis.h"
#include "spice/parser/netlist_parser.h"

namespace {

using namespace acstab;

/// CSC pattern of an n x n matrix from explicit (row, col) entries.
struct pattern {
    std::size_t n;
    std::vector<std::size_t> col_ptr;
    std::vector<std::size_t> row_idx;

    pattern(std::size_t n_, const std::vector<std::pair<std::size_t, std::size_t>>& entries)
        : n(n_), col_ptr(n_ + 1, 0)
    {
        std::vector<std::vector<std::size_t>> cols(n);
        for (const auto& [r, c] : entries)
            cols[c].push_back(r);
        for (std::size_t c = 0; c < n; ++c) {
            std::sort(cols[c].begin(), cols[c].end());
            col_ptr[c + 1] = col_ptr[c] + cols[c].size();
            row_idx.insert(row_idx.end(), cols[c].begin(), cols[c].end());
        }
    }
};

bool is_permutation(const std::vector<std::size_t>& q, std::size_t n)
{
    if (q.size() != n)
        return false;
    std::vector<bool> seen(n, false);
    for (const std::size_t v : q) {
        if (v >= n || seen[v])
            return false;
        seen[v] = true;
    }
    return true;
}

/// 2-D k x k grid pattern (5-point stencil plus diagonal), the classic
/// fill stress where minimum degree must win.
pattern mesh_pattern(std::size_t k)
{
    std::vector<std::pair<std::size_t, std::size_t>> e;
    const auto id = [k](std::size_t i, std::size_t j) { return i * k + j; };
    for (std::size_t i = 0; i < k; ++i)
        for (std::size_t j = 0; j < k; ++j) {
            e.emplace_back(id(i, j), id(i, j));
            if (j + 1 < k) {
                e.emplace_back(id(i, j), id(i, j + 1));
                e.emplace_back(id(i, j + 1), id(i, j));
            }
            if (i + 1 < k) {
                e.emplace_back(id(i, j), id(i + 1, j));
                e.emplace_back(id(i + 1, j), id(i, j));
            }
        }
    return pattern(k * k, e);
}

TEST(amd_order, permutation_is_valid_on_assorted_patterns)
{
    // Tridiagonal.
    std::vector<std::pair<std::size_t, std::size_t>> tri;
    for (std::size_t i = 0; i < 9; ++i) {
        tri.emplace_back(i, i);
        if (i + 1 < 9) {
            tri.emplace_back(i, i + 1);
            tri.emplace_back(i + 1, i);
        }
    }
    const pattern trid(9, tri);
    EXPECT_TRUE(is_permutation(numeric::minimum_degree_order(trid.n, trid.col_ptr, trid.row_idx),
                               trid.n));

    // Dense arrow (one hub row/column): the hub outranks every leaf until
    // only it and one leaf remain (then both have degree 1 and the tie
    // break may go either way), so it lands in the final two positions.
    std::vector<std::pair<std::size_t, std::size_t>> arrow;
    for (std::size_t i = 0; i < 12; ++i) {
        arrow.emplace_back(i, i);
        if (i != 0) {
            arrow.emplace_back(0, i);
            arrow.emplace_back(i, 0);
        }
    }
    const pattern arr(12, arrow);
    const std::vector<std::size_t> q
        = numeric::minimum_degree_order(arr.n, arr.col_ptr, arr.row_idx);
    EXPECT_TRUE(is_permutation(q, arr.n));
    EXPECT_TRUE(q[arr.n - 1] == 0u || q[arr.n - 2] == 0u)
        << "hub of the arrow pattern must be pivoted among the last two";

    // Mesh, diagonal-only, and an unsymmetric pattern (the ordering
    // symmetrizes to A + A^T internally).
    const pattern mesh = mesh_pattern(7);
    EXPECT_TRUE(is_permutation(
        numeric::minimum_degree_order(mesh.n, mesh.col_ptr, mesh.row_idx), mesh.n));
    const pattern diag(5, {{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}});
    EXPECT_TRUE(is_permutation(
        numeric::minimum_degree_order(diag.n, diag.col_ptr, diag.row_idx), diag.n));
    const pattern unsym(4, {{0, 0}, {1, 1}, {2, 2}, {3, 3}, {3, 0}, {0, 2}, {1, 3}});
    EXPECT_TRUE(is_permutation(
        numeric::minimum_degree_order(unsym.n, unsym.col_ptr, unsym.row_idx), unsym.n));

    // Degenerate sizes.
    EXPECT_TRUE(numeric::minimum_degree_order(0, {0}, {}).empty());
    EXPECT_EQ(numeric::minimum_degree_order(1, {0, 1}, {0}), std::vector<std::size_t>{0});
}

TEST(amd_order, deterministic_across_calls)
{
    const pattern mesh = mesh_pattern(9);
    const auto q1 = numeric::minimum_degree_order(mesh.n, mesh.col_ptr, mesh.row_idx);
    const auto q2 = numeric::minimum_degree_order(mesh.n, mesh.col_ptr, mesh.row_idx);
    EXPECT_EQ(q1, q2);
}

TEST(amd_order, approx_permutation_is_valid_on_assorted_patterns)
{
    // The approximate variant must produce valid permutations on every
    // structure exact MD handles: tridiagonal, arrow, mesh, diagonal,
    // unsymmetric, degenerate.
    std::vector<std::pair<std::size_t, std::size_t>> tri;
    for (std::size_t i = 0; i < 9; ++i) {
        tri.emplace_back(i, i);
        if (i + 1 < 9) {
            tri.emplace_back(i, i + 1);
            tri.emplace_back(i + 1, i);
        }
    }
    const pattern trid(9, tri);
    EXPECT_TRUE(is_permutation(
        numeric::approx_minimum_degree_order(trid.n, trid.col_ptr, trid.row_idx), trid.n));

    std::vector<std::pair<std::size_t, std::size_t>> arrow;
    for (std::size_t i = 0; i < 12; ++i) {
        arrow.emplace_back(i, i);
        if (i != 0) {
            arrow.emplace_back(0, i);
            arrow.emplace_back(i, 0);
        }
    }
    const pattern arr(12, arrow);
    const std::vector<std::size_t> q
        = numeric::approx_minimum_degree_order(arr.n, arr.col_ptr, arr.row_idx);
    EXPECT_TRUE(is_permutation(q, arr.n));
    EXPECT_TRUE(q[arr.n - 1] == 0u || q[arr.n - 2] == 0u)
        << "hub of the arrow pattern must be pivoted among the last two";

    const pattern mesh = mesh_pattern(7);
    EXPECT_TRUE(is_permutation(
        numeric::approx_minimum_degree_order(mesh.n, mesh.col_ptr, mesh.row_idx), mesh.n));
    const pattern diag(5, {{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}});
    EXPECT_TRUE(is_permutation(
        numeric::approx_minimum_degree_order(diag.n, diag.col_ptr, diag.row_idx), diag.n));
    const pattern unsym(4, {{0, 0}, {1, 1}, {2, 2}, {3, 3}, {3, 0}, {0, 2}, {1, 3}});
    EXPECT_TRUE(is_permutation(
        numeric::approx_minimum_degree_order(unsym.n, unsym.col_ptr, unsym.row_idx), unsym.n));

    EXPECT_TRUE(numeric::approx_minimum_degree_order(0, {0}, {}).empty());
    EXPECT_EQ(numeric::approx_minimum_degree_order(1, {0, 1}, {0}),
              std::vector<std::size_t>{0});
}

TEST(amd_order, approx_deterministic_across_calls)
{
    const pattern mesh = mesh_pattern(9);
    const auto q1 = numeric::approx_minimum_degree_order(mesh.n, mesh.col_ptr, mesh.row_idx);
    const auto q2 = numeric::approx_minimum_degree_order(mesh.n, mesh.col_ptr, mesh.row_idx);
    EXPECT_EQ(q1, q2);
}

/// The PR's headline fill claim, at test scale: on a generated ~1k-node
/// RC mesh the count heuristic (equal column degrees -> natural order)
/// fills at least 2x more than minimum degree. CI re-asserts this at
/// 2k nodes from the bench JSON.
TEST(amd_order, mesh_fill_at_least_2x_better_than_count)
{
    gen::gen_options gopt;
    gopt.size = 1024;
    spice::parsed_netlist net = spice::parse_netlist(gen::rcmesh_netlist(gopt));
    net.ckt.finalize();
    const std::vector<real> op = spice::dc_operating_point(net.ckt).solution;
    const engine::linearized_snapshot snap(net.ckt, op, {});
    numeric::csc_matrix<cplx> work = snap.make_workspace();
    snap.assemble(to_omega(1e6), work);

    const auto fill = [&work](numeric::column_ordering o) {
        numeric::lu_options lopt;
        lopt.ordering = o;
        const numeric::symbolic_lu<cplx> sym(work, lopt);
        return sym.lower_nnz() + sym.upper_nnz();
    };
    const std::size_t count_nnz = fill(numeric::column_ordering::count);
    const std::size_t amd_nnz = fill(numeric::column_ordering::amd);
    EXPECT_GE(count_nnz, 2 * amd_nnz)
        << "count " << count_nnz << " vs amd " << amd_nnz << " L+U nonzeros";

    // The approximate variant's degree bounds may reorder ties, but its
    // fill must stay within 25% of exact minimum degree on the classic
    // mesh stress (measured slack is a few percent; 25% leaves room for
    // platform-stable-but-different tie cascades).
    const std::size_t approx_nnz = fill(numeric::column_ordering::amd_approx);
    EXPECT_LE(approx_nnz, amd_nnz + amd_nnz / 4)
        << "amd-approx " << approx_nnz << " vs amd " << amd_nnz << " L+U nonzeros";
}

} // namespace
