// Polynomials, root finding, and rational transfer functions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/types.h"
#include "numeric/polynomial.h"
#include "numeric/rational.h"

namespace {

using acstab::cplx;
using acstab::real;
using acstab::numeric::polynomial;
using acstab::numeric::rational;

TEST(polynomial, evaluation_horner)
{
    const polynomial p({1.0, -2.0, 3.0}); // 1 - 2x + 3x^2
    EXPECT_NEAR(p(0.0), 1.0, 1e-15);
    EXPECT_NEAR(p(1.0), 2.0, 1e-15);
    EXPECT_NEAR(p(-2.0), 17.0, 1e-15);
}

TEST(polynomial, arithmetic)
{
    const polynomial a({1.0, 1.0});  // 1 + x
    const polynomial b({-1.0, 1.0}); // -1 + x
    const polynomial prod = a * b;   // x^2 - 1
    EXPECT_EQ(prod.degree(), 2u);
    EXPECT_NEAR(prod.coeff(0), -1.0, 1e-15);
    EXPECT_NEAR(prod.coeff(1), 0.0, 1e-15);
    EXPECT_NEAR(prod.coeff(2), 1.0, 1e-15);
    const polynomial sum = a + b; // 2x
    EXPECT_EQ(sum.degree(), 1u);
    EXPECT_NEAR(sum.coeff(1), 2.0, 1e-15);
    const polynomial diff = a - b; // 2
    EXPECT_EQ(diff.degree(), 0u);
    EXPECT_NEAR(diff.coeff(0), 2.0, 1e-15);
}

TEST(polynomial, derivative)
{
    const polynomial p({5.0, 3.0, 0.0, 2.0}); // 5 + 3x + 2x^3
    const polynomial d = p.derivative();      // 3 + 6x^2
    EXPECT_EQ(d.degree(), 2u);
    EXPECT_NEAR(d.coeff(0), 3.0, 1e-15);
    EXPECT_NEAR(d.coeff(1), 0.0, 1e-15);
    EXPECT_NEAR(d.coeff(2), 6.0, 1e-15);
}

TEST(polynomial, trims_leading_zeros)
{
    const polynomial p({1.0, 2.0, 0.0, 0.0});
    EXPECT_EQ(p.degree(), 1u);
}

TEST(polynomial, quadratic_roots)
{
    // (x-2)(x+5) = x^2 + 3x - 10
    const polynomial p({-10.0, 3.0, 1.0});
    auto roots = p.roots();
    ASSERT_EQ(roots.size(), 2u);
    std::sort(roots.begin(), roots.end(),
              [](const cplx& a, const cplx& b) { return a.real() < b.real(); });
    EXPECT_LT(std::abs(roots[0] - cplx{-5.0, 0.0}), 1e-9);
    EXPECT_LT(std::abs(roots[1] - cplx{2.0, 0.0}), 1e-9);
}

TEST(polynomial, complex_roots_of_resonator)
{
    // s^2 + 0.4 s + 1: zeta=0.2, wn=1.
    const polynomial p({1.0, 0.4, 1.0});
    const auto roots = p.roots();
    ASSERT_EQ(roots.size(), 2u);
    for (const cplx& r : roots) {
        EXPECT_NEAR(std::abs(r), 1.0, 1e-9);
        EXPECT_NEAR(r.real(), -0.2, 1e-9);
    }
}

TEST(polynomial, from_roots_round_trip)
{
    const std::vector<real> roots{-1.0, 2.0, -3.5, 0.25};
    const polynomial p = polynomial::from_roots(roots);
    EXPECT_EQ(p.degree(), 4u);
    for (const real r : roots)
        EXPECT_NEAR(p(r), 0.0, 1e-10);
}

TEST(polynomial, from_complex_roots_real_coeffs)
{
    const std::vector<cplx> roots{{-1.0, 2.0}, {-1.0, -2.0}, {-3.0, 0.0}};
    const polynomial p = polynomial::from_complex_roots(roots);
    EXPECT_EQ(p.degree(), 3u);
    // (s^2 + 2s + 5)(s + 3)
    EXPECT_NEAR(p.coeff(0), 15.0, 1e-12);
    EXPECT_NEAR(p.coeff(1), 11.0, 1e-12);
    EXPECT_NEAR(p.coeff(2), 5.0, 1e-12);
    EXPECT_NEAR(p.coeff(3), 1.0, 1e-12);
}

TEST(polynomial, from_complex_roots_requires_conjugates)
{
    EXPECT_THROW(polynomial::from_complex_roots({{1.0, 2.0}}), acstab::numeric_error);
}

TEST(polynomial, degree_ten_recovers_roots)
{
    std::vector<real> roots;
    for (int k = 1; k <= 10; ++k)
        roots.push_back(static_cast<real>(k) * 0.3 - 1.6);
    const polynomial p = polynomial::from_roots(roots);
    auto found = p.roots();
    ASSERT_EQ(found.size(), 10u);
    std::sort(found.begin(), found.end(),
              [](const cplx& a, const cplx& b) { return a.real() < b.real(); });
    std::sort(roots.begin(), roots.end());
    for (std::size_t i = 0; i < roots.size(); ++i) {
        EXPECT_NEAR(found[i].real(), roots[i], 1e-6);
        EXPECT_NEAR(found[i].imag(), 0.0, 1e-6);
    }
}

TEST(rational, second_order_magnitude)
{
    const real zeta = 0.3;
    const rational t = rational::second_order_lowpass(zeta);
    EXPECT_NEAR(t.magnitude(0.0), 1.0, 1e-12);
    // |T(j1)| = 1/(2 zeta) at the normalized natural frequency.
    EXPECT_NEAR(t.magnitude(1.0), 1.0 / (2.0 * zeta), 1e-12);
    // High-frequency rolloff ~ 1/w^2.
    EXPECT_NEAR(t.magnitude(100.0) * 1e4, 1.0, 1e-2);
}

TEST(rational, second_order_phase)
{
    const rational t = rational::second_order_lowpass(0.5);
    EXPECT_NEAR(t.phase(1.0), -acstab::pi / 2.0, 1e-12); // -90 deg at wn
    EXPECT_GT(t.phase(0.01), -0.03);
    EXPECT_LT(t.phase(100.0), -3.0);
}

TEST(rational, poles_of_second_order)
{
    const real zeta = 0.25;
    const real wn = 2.0e3;
    const rational t = rational::second_order_lowpass(zeta, wn);
    auto poles = t.poles();
    ASSERT_EQ(poles.size(), 2u);
    for (const cplx& p : poles) {
        EXPECT_NEAR(std::abs(p), wn, wn * 1e-9);
        EXPECT_NEAR(-p.real() / std::abs(p), zeta, 1e-9);
    }
}

TEST(rational, unity_feedback_closed_loop)
{
    // L(s) = 10/(s+1): closed loop 10/(s+11).
    const rational l{polynomial({10.0}), polynomial({1.0, 1.0})};
    const rational cl = l.unity_feedback_closed_loop();
    EXPECT_NEAR(cl.magnitude(0.0), 10.0 / 11.0, 1e-12);
    auto poles = cl.poles();
    ASSERT_EQ(poles.size(), 1u);
    EXPECT_LT(std::abs(poles[0] - cplx{-11.0, 0.0}), 1e-9);
}

TEST(rational, product)
{
    const rational a{polynomial({2.0}), polynomial({1.0, 1.0})};
    const rational b{polynomial({3.0}), polynomial({1.0, 0.5})};
    const rational c = a * b;
    EXPECT_NEAR(c.magnitude(0.0), 6.0, 1e-12);
    EXPECT_EQ(c.den().degree(), 2u);
}

TEST(rational, rejects_zero_denominator)
{
    EXPECT_THROW(rational(polynomial({1.0}), polynomial({0.0})), acstab::numeric_error);
}

} // namespace
