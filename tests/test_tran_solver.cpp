// Shared-symbolic transient solver: equivalence against the seed
// one-shot path, solver-counter contracts, and the actionable
// non-convergence ladder diagnostic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/error.h"
#include "gen/netlist_gen.h"
#include "spice/circuit.h"
#include "spice/devices/diode.h"
#include "spice/devices/passive.h"
#include "spice/devices/sources.h"
#include "spice/parser/netlist_parser.h"
#include "spice/tran_analysis.h"

#ifndef ACSTAB_NETLIST_DIR
#define ACSTAB_NETLIST_DIR "netlists"
#endif

namespace {

using namespace acstab;
using namespace acstab::spice;

[[nodiscard]] std::string netlist_path(const std::string& name)
{
    return std::string(ACSTAB_NETLIST_DIR) + "/" + name;
}

/// Run the same transient twice — shared-symbolic vs seed one-shot — on
/// freshly parsed circuits and require waveform agreement to solver
/// rounding (1e-12 relative) at every step of every unknown. Both paths
/// run the identical Newton iteration; only the linear-solve plumbing
/// differs, so this bound is tight, not statistical.
void expect_paths_equivalent(const std::string& text, real tstop, real dt = 0.0)
{
    tran_options shared_opt;
    shared_opt.tstop = tstop;
    shared_opt.dt = dt;
    shared_opt.shared_solver = true;
    tran_options oneshot_opt = shared_opt;
    oneshot_opt.shared_solver = false;

    parsed_netlist net_a = parse_netlist(text);
    const tran_result a = transient(net_a.ckt, shared_opt);
    parsed_netlist net_b = parse_netlist(text);
    const tran_result b = transient(net_b.ckt, oneshot_opt);

    ASSERT_EQ(a.time.size(), b.time.size());
    // Agreement bound: 1e-12 relative to the run's solution scale
    // (||a - b||_inf <= 1e-12 * ||x||_inf, floor 1). Per-sample rounding
    // differs in the last bits because the shared path's supernodal
    // kernel sums in a different order than the one-shot factorization.
    real scale = 1.0;
    for (const std::vector<real>& row : a.solution)
        for (const real v : row)
            scale = std::max(scale, std::fabs(v));
    for (std::size_t s = 0; s < a.time.size(); ++s) {
        ASSERT_EQ(a.time[s], b.time[s]) << "step " << s;
        ASSERT_EQ(a.solution[s].size(), b.solution[s].size());
        for (std::size_t i = 0; i < a.solution[s].size(); ++i)
            EXPECT_LE(std::fabs(a.solution[s][i] - b.solution[s][i]), 1e-12 * scale)
                << "step " << s << " unknown " << i << " t=" << a.time[s];
    }
    // The shared path factored symbolically once; the one-shot baseline
    // reports no shared-solver activity at all.
    EXPECT_GE(a.solver.solves, a.time.size() - 1);
    EXPECT_GE(a.solver.symbolic_builds, std::size_t{1});
    EXPECT_EQ(b.solver.solves, std::size_t{0});
    EXPECT_EQ(b.solver.symbolic_builds, std::size_t{0});
}

[[nodiscard]] std::string read_file(const std::string& path)
{
    parsed_netlist net = parse_netlist_file(path); // validates while we are at it
    (void)net;
    std::string text;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

TEST(tran_solver, equivalence_follower)
{
    // BJT follower: nonlinear junctions, several Newton iterations per
    // step, ringing near 100 MHz.
    expect_paths_equivalent(read_file(netlist_path("follower.sp")), 1e-7);
}

TEST(tran_solver, equivalence_rlc_tank)
{
    expect_paths_equivalent(read_file(netlist_path("rlc_tank.sp")), 1e-5);
}

TEST(tran_solver, equivalence_two_pole_loop)
{
    expect_paths_equivalent(read_file(netlist_path("two_pole_loop.sp")), 1.3e-5);
}

TEST(tran_solver, equivalence_three_pole_loop)
{
    // Unstable loop (PM about -61 deg): keep the window short so the
    // exponential growth stays in range while both paths track it.
    expect_paths_equivalent(read_file(netlist_path("three_pole_loop.sp")), 5e-5);
}

TEST(tran_solver, equivalence_generated_rcmesh)
{
    gen::gen_options gopt;
    gopt.size = 64;
    expect_paths_equivalent(gen::rcmesh_netlist(gopt), 2e-5);
}

TEST(tran_solver, linear_circuit_factors_symbolically_once)
{
    // A linear RC circuit keeps one stamp pattern and one set of values
    // per step: the shared solver must never rebuild the pattern, never
    // trip the growth guard, and build exactly one symbolic analysis.
    circuit c;
    const node_id in = c.node("in");
    const node_id out = c.node("out");
    c.add<vsource>("vin", in, ground_node, waveform_spec::make_step(0.0, 1.0, 0.0, 1e-9));
    c.add<resistor>("r1", in, out, 1e3);
    c.add<capacitor>("c1", out, ground_node, 1e-9);

    tran_options opt;
    opt.tstop = 5e-6;
    opt.dt = 5e-9;
    const tran_result res = transient(c, opt);
    EXPECT_EQ(res.solver.symbolic_builds, std::size_t{1});
    EXPECT_EQ(res.solver.pattern_rebuilds, std::size_t{0});
    EXPECT_EQ(res.solver.guard_rebuilds, std::size_t{0});
    EXPECT_GE(res.solver.solves, res.time.size() - 1);
}

TEST(tran_solver, nonconvergence_reports_step_ladder)
{
    // A hard-driven diode with a one-iteration Newton budget cannot
    // converge; with dtmin_factor 0.5 the halving ladder has exactly one
    // rung below the nominal step before the engine gives up. The
    // diagnostic must carry the failing time, the attempted ladder and
    // the step floor — the actionable bits.
    circuit c;
    const node_id in = c.node("in");
    const node_id out = c.node("out");
    c.add<vsource>("vin", in, ground_node, waveform_spec::make_step(0.0, 5.0, 0.0, 1e-9));
    c.add<resistor>("r1", in, out, 100.0);
    c.add<diode>("d1", out, ground_node);

    tran_options opt;
    opt.tstop = 1e-6;
    opt.dt = 1e-8;
    opt.max_newton = 1;
    opt.dtmin_factor = 0.5;
    try {
        (void)transient(c, opt);
        FAIL() << "expected convergence_error";
    } catch (const convergence_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("transient: Newton failed at t = "), std::string::npos) << msg;
        EXPECT_NE(msg.find("advancing toward"), std::string::npos) << msg;
        EXPECT_NE(msg.find("attempted:"), std::string::npos) << msg;
        EXPECT_NE(msg.find("dt="), std::string::npos) << msg;
        EXPECT_NE(msg.find("no convergence in 1 iteration(s)"), std::string::npos) << msg;
        EXPECT_NE(msg.find("minimum step"), std::string::npos) << msg;
    }
}

TEST(tran_solver, oneshot_nonconvergence_matches_shared_diagnostic)
{
    // The ladder diagnostic is a property of the engine, not the solver
    // path: both paths fail at the same point with the same message.
    const auto run = [](bool shared) -> std::string {
        circuit c;
        const node_id in = c.node("in");
        const node_id out = c.node("out");
        c.add<vsource>("vin", in, ground_node,
                       waveform_spec::make_step(0.0, 5.0, 0.0, 1e-9));
        c.add<resistor>("r1", in, out, 100.0);
        c.add<diode>("d1", out, ground_node);
        tran_options opt;
        opt.tstop = 1e-6;
        opt.dt = 1e-8;
        opt.max_newton = 1;
        opt.dtmin_factor = 0.5;
        opt.shared_solver = shared;
        try {
            (void)transient(c, opt);
        } catch (const convergence_error& e) {
            return e.what();
        }
        return {};
    };
    const std::string shared_msg = run(true);
    const std::string oneshot_msg = run(false);
    ASSERT_FALSE(shared_msg.empty());
    EXPECT_EQ(shared_msg, oneshot_msg);
}

} // namespace
