// Second-order theory and the paper's Table 1.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "core/second_order.h"

namespace {

using namespace acstab;
using namespace acstab::core;

TEST(second_order, overshoot_formula)
{
    EXPECT_NEAR(overshoot_percent(0.2), 52.66, 0.05);
    EXPECT_NEAR(overshoot_percent(0.5), 16.30, 0.05);
    EXPECT_NEAR(overshoot_percent(0.7), 4.60, 0.05);
    EXPECT_NEAR(overshoot_percent(1.0), 0.0, 1e-12);
    EXPECT_NEAR(overshoot_percent(0.0), 100.0, 1e-12);
}

TEST(second_order, phase_margin_exact)
{
    // Known values of the exact unity-feedback phase-margin formula.
    EXPECT_NEAR(phase_margin_exact_deg(0.5), 51.83, 0.05);
    EXPECT_NEAR(phase_margin_exact_deg(0.2), 22.60, 0.1);
    EXPECT_NEAR(phase_margin_exact_deg(0.7), 65.16, 0.05);
    EXPECT_NEAR(phase_margin_exact_deg(0.0), 0.0, 1e-12);
}

TEST(second_order, rule_of_thumb_tracks_exact_below_07)
{
    for (real z = 0.1; z <= 0.6; z += 0.1)
        EXPECT_NEAR(phase_margin_rule_deg(z), phase_margin_exact_deg(z), 7.0) << z;
}

TEST(second_order, peak_magnitude)
{
    EXPECT_NEAR(peak_magnitude(0.5), 1.1547, 1e-4);
    EXPECT_NEAR(peak_magnitude(0.2), 2.5516, 1e-4);
    EXPECT_NEAR(peak_magnitude(0.1), 5.0252, 1e-4);
    EXPECT_NEAR(peak_magnitude(0.8), 1.0, 1e-12); // no resonance
}

TEST(second_order, performance_index_round_trip)
{
    for (real z = 0.05; z < 1.0; z += 0.05) {
        const real p = performance_index(z);
        EXPECT_NEAR(zeta_from_performance_index(p), z, 1e-12);
    }
    EXPECT_THROW(zeta_from_performance_index(2.0), analysis_error);
    EXPECT_THROW(zeta_from_performance_index(0.0), analysis_error);
}

TEST(second_order, table1_matches_paper_rows)
{
    // The paper's Table 1, rounded the way the paper prints it.
    const auto rows = table1();
    ASSERT_EQ(rows.size(), 11u);
    struct paper_row {
        real zeta, overshoot, pm, mp, index;
    };
    // zeta / overshoot% / PM deg / max magnitude / performance index
    const paper_row paper[] = {
        {1.0, 0.0, -1.0, -1.0, -1.0},  {0.9, 0.0, -1.0, -1.0, -1.2},
        {0.8, 2.0, -1.0, -1.0, -1.6},  {0.7, 5.0, 70.0, 1.01, -2.0},
        {0.6, 10.0, 60.0, 1.04, -2.8}, {0.5, 16.0, 50.0, 1.15, -4.0},
        {0.4, 25.0, 40.0, 1.4, -6.3},  {0.3, 37.0, 30.0, 1.8, -11.0},
        {0.2, 53.0, 20.0, 2.6, -25.0}, {0.1, 73.0, 10.0, 5.0, -100.0},
    };
    for (std::size_t i = 0; i < std::size(paper); ++i) {
        const auto& row = rows[i];
        const auto& want = paper[i];
        EXPECT_NEAR(row.zeta, want.zeta, 1e-12);
        EXPECT_NEAR(row.overshoot_pct, want.overshoot, 1.0) << "zeta=" << want.zeta;
        if (want.pm > 0.0)
            EXPECT_NEAR(row.phase_margin_deg, want.pm, 0.5) << "zeta=" << want.zeta;
        if (want.mp > 0.0)
            EXPECT_NEAR(row.max_magnitude, want.mp, 0.06) << "zeta=" << want.zeta;
        EXPECT_NEAR(row.perf_index, want.index, std::fabs(want.index) * 0.04 + 0.01)
            << "zeta=" << want.zeta;
    }
    // Last row: zeta = 0 -> infinite overshoot ratio markers.
    EXPECT_EQ(rows.back().zeta, 0.0);
    EXPECT_TRUE(std::isinf(rows.back().perf_index));
    EXPECT_TRUE(std::isinf(rows.back().max_magnitude));
}

TEST(second_order, resonant_frequency)
{
    EXPECT_NEAR(resonant_frequency(0.2), std::sqrt(1.0 - 0.08), 1e-12);
    EXPECT_NEAR(resonant_frequency(0.8), 0.0, 1e-12);
}

TEST(second_order, transfer_function_dc_gain_and_peak)
{
    const auto t = transfer_function(0.25, 1e4);
    EXPECT_NEAR(t.magnitude(0.0), 1.0, 1e-12);
    EXPECT_NEAR(t.magnitude(1e4), 1.0 / 0.5, 1e-9);
}

} // namespace
