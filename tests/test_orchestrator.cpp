// Fault-tolerant farm orchestrator: lease ledger state machine,
// crash-safe shard streams, streaming merge, and end-to-end `farm exec`
// campaigns under injected worker kills, stalls and interrupts.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "core/param_grid.h"
#include "farm/campaign.h"
#include "farm/executor.h"
#include "farm/orchestrator.h"
#include "farm/shard_store.h"

#ifndef ACSTAB_TOOL_PATH
#define ACSTAB_TOOL_PATH ""
#endif

namespace {

using namespace acstab;

constexpr const char* tank_netlist = R"(* parameterized RLC tank
.param rval=397.887 cval=1n
r1 tank 0 {rval}
l1 tank 0 25.3303u
c1 tank 0 {cval}
.stability tank 1e4 1e8 40
.end
)";

[[nodiscard]] std::string tank_netlist_path()
{
    static const std::string path = [] {
        const std::string p = "test_orch_tank.sp";
        std::ofstream out(p, std::ios::binary);
        out << tank_netlist;
        return p;
    }();
    return path;
}

/// Small campaign the end-to-end orchestrator tests can finish quickly:
/// 2 temps x 2 cval values = 4 points of the tank fixture.
[[nodiscard]] farm::campaign_spec small_campaign()
{
    farm::campaign_spec spec;
    spec.netlist = tank_netlist_path();
    spec.node = "tank";
    spec.fstart = 1e4;
    spec.fstop = 1e8;
    spec.points_per_decade = 40;
    spec.grid.temps = {0.0, 50.0};
    spec.grid.axes = {{"cval", {0.8e-9, 1.2e-9}}};
    return spec;
}

[[nodiscard]] std::string read_file_bytes(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/// The single-process ground truth: run every point in this process and
/// merge the one shard; `farm exec` reports must match these bytes.
[[nodiscard]] std::string legacy_report_bytes(const farm::campaign_spec& spec)
{
    const std::vector<farm::point_record> records = farm::run_shard(spec, 0, 1);
    const farm::json_value doc = farm::shard_to_json(spec, 0, 1, records);
    return farm::merge_shards(spec, {doc}).dump() + "\n";
}

/// Scratch campaign state (plan file + workdir), wiped per test.
struct exec_fixture {
    farm::campaign_spec spec = small_campaign();
    std::string plan_path;
    std::string workdir;
    std::string out;

    explicit exec_fixture(const std::string& name)
        : plan_path("test_orch_" + name + "_plan.json"),
          workdir("test_orch_" + name + ".work"),
          out("test_orch_" + name + "_report.json")
    {
        std::filesystem::remove_all(workdir);
        std::filesystem::remove(out);
        std::ofstream plan(plan_path, std::ios::binary);
        plan << farm::to_json(spec).dump() << "\n";
    }

    [[nodiscard]] farm::exec_options options() const
    {
        farm::exec_options opt;
        opt.workers = 2;
        opt.workdir = workdir;
        opt.out = out;
        opt.plan_path = plan_path;
        opt.tool_path = ACSTAB_TOOL_PATH;
        opt.verbose = false;
        opt.backoff_s = 0.02; // keep retry tests fast
        return opt;
    }
};

/// Scoped ACSTAB_FAULT_INJECT so a failing test cannot leak directives
/// into later ones.
struct fault_env {
    explicit fault_env(const std::string& directives)
    {
        ::setenv("ACSTAB_FAULT_INJECT", directives.c_str(), 1);
    }
    ~fault_env() { ::unsetenv("ACSTAB_FAULT_INJECT"); }
};

// --- lease_ledger ----------------------------------------------------------

TEST(lease_ledger, grants_contiguous_leases_in_index_order)
{
    core::lease_ledger ledger(10);
    const auto a = ledger.grant(4);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->begin, 0u);
    EXPECT_EQ(a->end, 4u);
    const auto b = ledger.grant(4);
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(b->begin, 4u);
    EXPECT_EQ(b->end, 8u);
    const auto c = ledger.grant(4);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->begin, 8u);
    EXPECT_EQ(c->end, 10u); // clipped at the grid end
    EXPECT_FALSE(ledger.grant(4).has_value());
    EXPECT_EQ(ledger.leased(), 10u);
}

TEST(lease_ledger, fail_release_regrants_below_the_cursor)
{
    core::lease_ledger ledger(6);
    (void)ledger.grant(6);
    for (std::size_t i = 0; i < 6; ++i)
        if (i != 2)
            ledger.complete(i);
    EXPECT_EQ(ledger.fail(2), 1u);
    EXPECT_EQ(ledger.cooling(), 1u);
    EXPECT_FALSE(ledger.grant(4).has_value()); // cooling points are not grantable
    ledger.release(2);
    const auto retry = ledger.grant(4);
    ASSERT_TRUE(retry.has_value());
    EXPECT_EQ(retry->begin, 2u);
    EXPECT_EQ(retry->end, 3u);
    EXPECT_EQ(ledger.attempts(2), 1u);
    ledger.complete(2);
    EXPECT_EQ(ledger.unresolved(), 0u);
}

TEST(lease_ledger, requeue_returns_lease_tail_without_attempt_penalty)
{
    core::lease_ledger ledger(4);
    (void)ledger.grant(4);
    // Worker died mid-lease: point 1 was in flight, 2..3 untouched.
    ledger.complete(0);
    (void)ledger.fail(1);
    ledger.requeue(2);
    ledger.requeue(3);
    EXPECT_EQ(ledger.attempts(2), 0u);
    EXPECT_EQ(ledger.pending(), 2u);
    const auto next = ledger.grant(8);
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(next->begin, 2u);
    EXPECT_EQ(next->end, 4u);
}

TEST(lease_ledger, quarantine_is_terminal_until_reset)
{
    core::lease_ledger ledger(3);
    (void)ledger.grant(3);
    ledger.complete(0);
    ledger.complete(2);
    (void)ledger.fail(1);
    ledger.quarantine(1);
    EXPECT_TRUE(ledger.is_quarantined(1));
    EXPECT_EQ(ledger.unresolved(), 0u);
    EXPECT_THROW(ledger.complete(1), analysis_error);
    // Resume policy: quarantined points get a fresh budget.
    ledger.reset_quarantined();
    EXPECT_FALSE(ledger.is_quarantined(1));
    EXPECT_EQ(ledger.attempts(1), 0u);
    const auto retry = ledger.grant(4);
    ASSERT_TRUE(retry.has_value());
    EXPECT_EQ(retry->begin, 1u);
}

TEST(lease_ledger, complete_is_idempotent_and_accepts_recovered_records)
{
    core::lease_ledger ledger(2);
    // A resume scan marks points done without any lease in flight.
    ledger.complete(0);
    ledger.complete(0);
    EXPECT_EQ(ledger.done(), 1u);
    EXPECT_EQ(ledger.unresolved(), 1u);
    EXPECT_THROW(ledger.complete(7), analysis_error);
}

// --- shard streams ---------------------------------------------------------

/// Hand-built records are enough for store-level tests (no analysis run).
[[nodiscard]] farm::point_record synthetic_record(const farm::campaign_spec& spec,
                                                  std::size_t index,
                                                  const std::string& error)
{
    farm::point_record rec;
    rec.point = spec.grid.point(index);
    rec.index = index;
    rec.status = core::point_status::analysis_failed;
    rec.error = error;
    return rec;
}

TEST(shard_stream, writer_scan_round_trip_and_truncated_tail_drop)
{
    const farm::campaign_spec spec = small_campaign();
    const std::string spec_bytes = farm::to_json(spec).dump();
    const std::string path = "test_orch_stream_rt.jsonl";
    std::filesystem::remove(path);
    {
        farm::shard_writer writer(path, spec, 7);
        writer.append(synthetic_record(spec, 0, "a"));
        writer.append(synthetic_record(spec, 2, "b"));
    }
    EXPECT_TRUE(farm::is_shard_stream_file(path));
    const farm::shard_stream_scan clean = farm::scan_shard_stream(path, spec_bytes);
    ASSERT_EQ(clean.records.size(), 2u);
    EXPECT_EQ(clean.records[0].point, 0u);
    EXPECT_EQ(clean.records[1].point, 2u);
    EXPECT_EQ(clean.truncated_tail_bytes, 0u);

    // Chop the trailing newline + a few bytes: exactly what a SIGKILL
    // mid-append leaves behind. The partial record is dropped, the rest
    // of the file stays readable.
    const std::string bytes = read_file_bytes(path);
    std::ofstream(path, std::ios::binary) << bytes.substr(0, bytes.size() - 5);
    const farm::shard_stream_scan cut = farm::scan_shard_stream(path, spec_bytes);
    ASSERT_EQ(cut.records.size(), 1u);
    EXPECT_EQ(cut.records[0].point, 0u);
    EXPECT_GT(cut.truncated_tail_bytes, 0u);
}

TEST(shard_stream, mid_file_corruption_error_is_actionable)
{
    const farm::campaign_spec spec = small_campaign();
    const std::string path = "test_orch_stream_corrupt.jsonl";
    std::filesystem::remove(path);
    {
        farm::shard_writer writer(path, spec, 0);
        writer.append(synthetic_record(spec, 0, "a"));
        writer.append(synthetic_record(spec, 1, "b"));
    }
    std::string bytes = read_file_bytes(path);
    const std::size_t first_record = bytes.find('\n') + 1;
    bytes[first_record + 2] = '\x01'; // damage inside a complete line
    std::ofstream(path, std::ios::binary) << bytes;
    try {
        (void)farm::scan_shard_stream(path, farm::to_json(spec).dump());
        FAIL() << "corrupt shard stream must not scan";
    } catch (const analysis_error& e) {
        const std::string what = e.what();
        // The triad that makes the error actionable: which file, where,
        // and what to do next.
        EXPECT_NE(what.find(path), std::string::npos) << what;
        EXPECT_NE(what.find("byte offset"), std::string::npos) << what;
        EXPECT_NE(what.find("--resume"), std::string::npos) << what;
    }
}

TEST(shard_stream, truncated_document_error_is_actionable)
{
    // The whole-document (farm run) path gets the same treatment via
    // parse_shard_document.
    try {
        (void)farm::parse_shard_document("{\"schema\":\"acstab-farm-shard-v1\",\"rec",
                                         "shard7.json");
        FAIL() << "truncated document must not parse";
    } catch (const analysis_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("shard7.json"), std::string::npos) << what;
        EXPECT_NE(what.find("offset"), std::string::npos) << what;
        EXPECT_NE(what.find("--resume"), std::string::npos) << what;
    }
}

TEST(shard_stream, merge_folds_byte_identical_duplicates_and_rejects_conflicts)
{
    const farm::campaign_spec spec = small_campaign();
    const std::string a = "test_orch_dup_a.jsonl";
    const std::string b = "test_orch_dup_b.jsonl";
    const std::string out = "test_orch_dup_merged.json";
    std::filesystem::remove(a);
    std::filesystem::remove(b);
    {
        farm::shard_writer wa(a, spec, 0);
        for (std::size_t i = 0; i < 4; ++i)
            wa.append(synthetic_record(spec, i, "x"));
        // Worker died after appending point 2 but before its ack: the
        // retry wrote an identical copy into its own stream.
        farm::shard_writer wb(b, spec, 1);
        wb.append(synthetic_record(spec, 2, "x"));
    }
    const farm::stream_merge_result merged
        = farm::merge_shard_streams(spec, {a, b}, {}, out);
    EXPECT_EQ(merged.points, 4u);
    EXPECT_TRUE(merged.extras_used.empty());

    // A non-identical duplicate is campaign corruption, not crash debris.
    const std::string c = "test_orch_dup_c.jsonl";
    std::filesystem::remove(c);
    {
        farm::shard_writer wc(c, spec, 2);
        wc.append(synthetic_record(spec, 2, "DIFFERENT"));
    }
    EXPECT_THROW((void)farm::merge_shard_streams(spec, {a, c}, {}, out), analysis_error);
}

TEST(shard_stream, merge_missing_points_error_names_resume)
{
    const farm::campaign_spec spec = small_campaign();
    const std::string a = "test_orch_missing_a.jsonl";
    std::filesystem::remove(a);
    {
        farm::shard_writer wa(a, spec, 0);
        wa.append(synthetic_record(spec, 0, "x"));
    }
    try {
        (void)farm::merge_shard_streams(spec, {a}, {}, "test_orch_missing_out.json");
        FAIL() << "incomplete coverage must not merge";
    } catch (const analysis_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("missing 3 of 4"), std::string::npos) << what;
        EXPECT_NE(what.find("--resume"), std::string::npos) << what;
    }
}

TEST(shard_stream, quarantine_extras_fill_holes_but_lose_to_real_records)
{
    const farm::campaign_spec spec = small_campaign();
    const std::string a = "test_orch_extras_a.jsonl";
    const std::string out = "test_orch_extras_merged.json";
    std::filesystem::remove(a);
    {
        farm::shard_writer wa(a, spec, 0);
        wa.append(synthetic_record(spec, 0, "x"));
        wa.append(synthetic_record(spec, 1, "x"));
        wa.append(synthetic_record(spec, 3, "x"));
    }
    farm::point_record q2 = synthetic_record(spec, 2, "quarantined after 3 attempts");
    q2.status = core::point_status::quarantined;
    farm::point_record q3 = synthetic_record(spec, 3, "quarantined after 3 attempts");
    q3.status = core::point_status::quarantined;
    const farm::stream_merge_result merged
        = farm::merge_shard_streams(spec, {a}, {q2, q3}, out);
    // Point 3 has a real record (worker died post-append), so only the
    // genuinely missing point 2 takes its placeholder.
    ASSERT_EQ(merged.extras_used.size(), 1u);
    EXPECT_EQ(merged.extras_used[0], 2u);
    const farm::json_value report = farm::json_value::parse(read_file_bytes(out));
    const auto& records = report.at("records").items();
    ASSERT_EQ(records.size(), 4u);
    EXPECT_EQ(records[2].at("status").as_string(), "quarantined");
    EXPECT_EQ(records[3].at("status").as_string(), "failed");
}

// --- end-to-end farm exec --------------------------------------------------

TEST(farm_exec, clean_run_matches_single_process_bytes)
{
    const exec_fixture fx("clean");
    const farm::exec_summary sum = farm::exec_campaign(fx.spec, fx.options());
    EXPECT_FALSE(sum.interrupted);
    EXPECT_EQ(sum.completed, 4u);
    EXPECT_TRUE(sum.quarantined.empty());
    EXPECT_EQ(read_file_bytes(fx.out), legacy_report_bytes(fx.spec));
}

TEST(farm_exec, worker_kill_is_retried_to_byte_identical_report)
{
    const exec_fixture fx("crash");
    // The worker SIGKILLs itself right before point 1 — mid-shard, after
    // its stream already holds earlier records. Fire-once marker: the
    // retry computes the point normally.
    const fault_env env("crash:1");
    const farm::exec_summary sum = farm::exec_campaign(fx.spec, fx.options());
    EXPECT_FALSE(sum.interrupted);
    EXPECT_TRUE(sum.quarantined.empty());
    EXPECT_EQ(read_file_bytes(fx.out), legacy_report_bytes(fx.spec));
}

TEST(farm_exec, stalled_point_times_out_into_quarantine)
{
    const exec_fixture fx("stall");
    // Stall point 2 on EVERY attempt; with a short per-point budget the
    // orchestrator must kill, retry, exhaust the budget and quarantine —
    // and still finish the other points.
    const fault_env env("stall:2:30:always");
    farm::exec_options opt = fx.options();
    opt.point_timeout_s = 1.0;
    opt.max_attempts = 2;
    const farm::exec_summary sum = farm::exec_campaign(fx.spec, opt);
    EXPECT_FALSE(sum.interrupted);
    ASSERT_EQ(sum.quarantined.size(), 1u);
    EXPECT_EQ(sum.quarantined[0].first, 2u);
    EXPECT_NE(sum.quarantined[0].second.find("wall-clock timeout"), std::string::npos)
        << sum.quarantined[0].second;

    // The quarantined point is listed in the report, not silently dropped.
    const farm::json_value report = farm::json_value::parse(read_file_bytes(fx.out));
    const auto& records = report.at("records").items();
    ASSERT_EQ(records.size(), 4u);
    EXPECT_EQ(records[2].at("status").as_string(), "quarantined");
    EXPECT_NE(records[2].at("error").as_string().find("wall-clock timeout"),
              std::string::npos);
    EXPECT_EQ(records[1].at("status").as_string(), "ok");
}

TEST(farm_exec, interrupt_then_resume_is_byte_identical)
{
    const exec_fixture fx("resume");
    {
        // Injected SIGINT-equivalent after the first completed point,
        // with a worker kill thrown in for good measure.
        const fault_env env("crash:1,interrupt:1");
        const farm::exec_summary sum = farm::exec_campaign(fx.spec, fx.options());
        EXPECT_TRUE(sum.interrupted);
        EXPECT_LT(sum.completed, 4u);
    }
    // Resume re-leases only the unfinished points and converges to the
    // same bytes as the never-interrupted single-process run.
    farm::exec_options opt = fx.options();
    opt.resume = true;
    const farm::exec_summary resumed = farm::exec_campaign(fx.spec, opt);
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_EQ(resumed.completed, 4u);
    EXPECT_TRUE(resumed.quarantined.empty());
    EXPECT_EQ(read_file_bytes(fx.out), legacy_report_bytes(fx.spec));
}

TEST(farm_exec, nonexistent_report_directory_fails_before_any_work)
{
    exec_fixture fx("badout");
    farm::exec_options opt = fx.options();
    opt.out = "no_such_dir_xyz/report.json";
    try {
        (void)farm::exec_campaign(fx.spec, opt);
        FAIL() << "exec must refuse an unwritable report destination";
    } catch (const analysis_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("does not exist"), std::string::npos) << what;
        EXPECT_NE(what.find("no points were run"), std::string::npos) << what;
    }
    // The probe fires before any state is created: no workdir, no journal,
    // no worker was ever spawned.
    EXPECT_FALSE(std::filesystem::exists(fx.workdir));
}

TEST(farm_exec, file_as_report_parent_fails_before_any_work)
{
    exec_fixture fx("badparent");
    const std::string bogus_parent = "test_orch_badparent_file";
    { std::ofstream(bogus_parent, std::ios::binary) << "not a directory\n"; }
    farm::exec_options opt = fx.options();
    opt.out = bogus_parent + "/report.json";
    try {
        (void)farm::exec_campaign(fx.spec, opt);
        FAIL() << "exec must refuse a non-directory report parent";
    } catch (const analysis_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("is not a directory"), std::string::npos) << what;
        EXPECT_NE(what.find("no points were run"), std::string::npos) << what;
    }
    EXPECT_FALSE(std::filesystem::exists(fx.workdir));
    std::filesystem::remove(bogus_parent);
}

TEST(farm_exec, failed_final_merge_preserves_records_and_names_resume)
{
    exec_fixture fx("mergefail");
    // A directory squatting on the report path defeats the writability
    // probe (its parent is fine) but makes the final rename fail — the
    // computed records must survive and the error must say how to recover.
    std::filesystem::remove_all(fx.out);
    std::filesystem::create_directory(fx.out);
    try {
        (void)farm::exec_campaign(fx.spec, fx.options());
        FAIL() << "merge onto a directory must fail";
    } catch (const analysis_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("--resume"), std::string::npos) << what;
        EXPECT_NE(what.find(fx.workdir), std::string::npos) << what;
    }
    // Recovery path from the error message: fix the destination, resume,
    // and get the byte-identical report without recomputing any point.
    std::filesystem::remove_all(fx.out);
    farm::exec_options opt = fx.options();
    opt.resume = true;
    const farm::exec_summary sum = farm::exec_campaign(fx.spec, opt);
    EXPECT_EQ(sum.completed, 4u);
    EXPECT_EQ(read_file_bytes(fx.out), legacy_report_bytes(fx.spec));
}

TEST(farm_exec, on_point_hook_streams_each_record_as_it_lands)
{
    exec_fixture fx("onpoint");
    farm::exec_options opt = fx.options();
    std::vector<std::pair<std::size_t, std::string>> seen;
    opt.on_point = [&](std::size_t index, const std::string& record_json) {
        seen.emplace_back(index, record_json);
    };
    const farm::exec_summary sum = farm::exec_campaign(fx.spec, opt);
    EXPECT_EQ(sum.completed, 4u);
    ASSERT_EQ(seen.size(), 4u);
    std::set<std::size_t> indices;
    for (const auto& [index, record_json] : seen) {
        indices.insert(index);
        const farm::json_value record = farm::json_value::parse(record_json);
        EXPECT_EQ(static_cast<std::size_t>(record.at("index").as_number()), index);
        EXPECT_EQ(record.at("status").as_string(), "ok");
    }
    EXPECT_EQ(indices, (std::set<std::size_t>{0, 1, 2, 3}));
    EXPECT_EQ(read_file_bytes(fx.out), legacy_report_bytes(fx.spec));
}

TEST(farm_exec, cancelled_hook_checkpoints_like_an_interrupt)
{
    exec_fixture fx("cancelhook");
    bool cancel = false;
    farm::exec_options opt = fx.options();
    opt.on_point = [&](std::size_t, const std::string&) { cancel = true; };
    opt.cancelled = [&] { return cancel; };
    const farm::exec_summary sum = farm::exec_campaign(fx.spec, opt);
    EXPECT_TRUE(sum.interrupted);
    EXPECT_LT(sum.completed, 4u);
    EXPECT_GE(sum.completed, 1u);
    // Same contract as SIGINT: the campaign is resumable to identical bytes.
    farm::exec_options resume_opt = fx.options();
    resume_opt.resume = true;
    const farm::exec_summary resumed = farm::exec_campaign(fx.spec, resume_opt);
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_EQ(resumed.completed, 4u);
    EXPECT_EQ(read_file_bytes(fx.out), legacy_report_bytes(fx.spec));
}

TEST(farm_exec, fresh_exec_refuses_an_existing_campaign_dir)
{
    const exec_fixture fx("guard");
    (void)farm::exec_campaign(fx.spec, fx.options());
    // Accidentally re-running without --resume must not clobber state.
    EXPECT_THROW((void)farm::exec_campaign(fx.spec, fx.options()), analysis_error);
    // And --resume on an already-complete campaign just re-merges.
    farm::exec_options opt = fx.options();
    opt.resume = true;
    const farm::exec_summary again = farm::exec_campaign(fx.spec, opt);
    EXPECT_EQ(again.completed, 4u);
    EXPECT_EQ(read_file_bytes(fx.out), legacy_report_bytes(fx.spec));
}

} // namespace
