// Interpolation, crossings, parabolic peak refinement, grids.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/types.h"
#include "numeric/interpolation.h"

namespace {

using acstab::real;
using acstab::numeric::find_crossing;
using acstab::numeric::interp_linear;
using acstab::numeric::lin_space;
using acstab::numeric::log_space;
using acstab::numeric::refine_extremum;

TEST(interp_linear, interior_and_clamping)
{
    const std::vector<real> x{0.0, 1.0, 2.0};
    const std::vector<real> y{0.0, 10.0, 40.0};
    EXPECT_NEAR(interp_linear(x, y, 0.5), 5.0, 1e-12);
    EXPECT_NEAR(interp_linear(x, y, 1.5), 25.0, 1e-12);
    EXPECT_NEAR(interp_linear(x, y, -1.0), 0.0, 1e-12);
    EXPECT_NEAR(interp_linear(x, y, 3.0), 40.0, 1e-12);
}

TEST(interp_linear, rejects_short_arrays)
{
    const std::vector<real> one{1.0};
    EXPECT_THROW(interp_linear(one, one, 0.5), acstab::numeric_error);
}

TEST(find_crossing, locates_level)
{
    const std::vector<real> x{0.0, 1.0, 2.0, 3.0};
    const std::vector<real> y{0.0, 2.0, 4.0, 6.0};
    real xc = 0.0;
    ASSERT_TRUE(find_crossing(x, y, 3.0, xc));
    EXPECT_NEAR(xc, 1.5, 1e-12);
}

TEST(find_crossing, first_of_multiple)
{
    const std::vector<real> x{0.0, 1.0, 2.0, 3.0, 4.0};
    const std::vector<real> y{-1.0, 1.0, -1.0, 1.0, -1.0};
    real xc = 0.0;
    ASSERT_TRUE(find_crossing(x, y, 0.0, xc));
    EXPECT_NEAR(xc, 0.5, 1e-12);
}

TEST(find_crossing, absent)
{
    const std::vector<real> x{0.0, 1.0, 2.0};
    const std::vector<real> y{1.0, 2.0, 3.0};
    real xc = 0.0;
    EXPECT_FALSE(find_crossing(x, y, 5.0, xc));
}

TEST(refine_extremum, exact_parabola)
{
    // y = -(x - 1.3)^2 + 4 sampled off-vertex.
    const auto f = [](real x) { return -(x - 1.3) * (x - 1.3) + 4.0; };
    const auto r = refine_extremum(1.0, f(1.0), 1.25, f(1.25), 1.6, f(1.6));
    EXPECT_NEAR(r.x, 1.3, 1e-12);
    EXPECT_NEAR(r.y, 4.0, 1e-12);
}

TEST(refine_extremum, degenerate_falls_back)
{
    // Collinear points: no curvature; returns the middle sample.
    const auto r = refine_extremum(0.0, 1.0, 1.0, 2.0, 2.0, 3.0);
    EXPECT_NEAR(r.x, 1.0, 1e-12);
    EXPECT_NEAR(r.y, 2.0, 1e-12);
}

TEST(log_space, endpoints_and_spacing)
{
    const std::vector<real> g = log_space(10.0, 1000.0, 5);
    ASSERT_EQ(g.size(), 5u);
    EXPECT_NEAR(g.front(), 10.0, 1e-12);
    EXPECT_NEAR(g.back(), 1000.0, 1e-12);
    for (std::size_t i = 1; i < g.size(); ++i)
        EXPECT_NEAR(g[i] / g[i - 1], std::sqrt(10.0), 1e-9);
}

TEST(log_space, validates_input)
{
    EXPECT_THROW(log_space(-1.0, 10.0, 4), acstab::numeric_error);
    EXPECT_THROW(log_space(10.0, 1.0, 4), acstab::numeric_error);
    EXPECT_THROW(log_space(1.0, 10.0, 1), acstab::numeric_error);
}

TEST(lin_space, basic)
{
    const std::vector<real> g = lin_space(0.0, 1.0, 5);
    ASSERT_EQ(g.size(), 5u);
    EXPECT_NEAR(g[1], 0.25, 1e-15);
    EXPECT_NEAR(g[3], 0.75, 1e-15);
}

} // namespace
