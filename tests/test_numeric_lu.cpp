// Dense and sparse LU: round-trips, pivoting, determinants, failure modes.
#include <gtest/gtest.h>

#include <complex>
#include <random>

#include "common/error.h"
#include "common/types.h"
#include "numeric/lu.h"
#include "numeric/sparse_lu.h"
#include "numeric/sparse_matrix.h"

namespace {

using acstab::cplx;
using acstab::real;
using acstab::numeric_error;
using acstab::numeric::csc_matrix;
using acstab::numeric::dense_matrix;
using acstab::numeric::lu_decomposition;
using acstab::numeric::sparse_lu;
using acstab::numeric::triplet_matrix;

TEST(dense_lu, solves_small_system)
{
    dense_matrix<real> a(2, 2);
    a(0, 0) = 2.0;
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    a(1, 1) = 3.0;
    const lu_decomposition<real> lu(a);
    const std::vector<real> x = lu.solve(std::vector<real>{5.0, 10.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(dense_lu, requires_pivoting)
{
    // Zero on the initial diagonal forces a row swap.
    dense_matrix<real> a(2, 2);
    a(0, 0) = 0.0;
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    a(1, 1) = 0.0;
    const lu_decomposition<real> lu(a);
    const std::vector<real> x = lu.solve(std::vector<real>{3.0, 7.0});
    EXPECT_NEAR(x[0], 7.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(dense_lu, detects_singular)
{
    dense_matrix<real> a(2, 2);
    a(0, 0) = 1.0;
    a(0, 1) = 2.0;
    a(1, 0) = 2.0;
    a(1, 1) = 4.0;
    EXPECT_THROW(lu_decomposition<real>{a}, numeric_error);
}

TEST(dense_lu, determinant_matches_known)
{
    dense_matrix<real> a(3, 3);
    a(0, 0) = 6.0;
    a(0, 1) = 1.0;
    a(0, 2) = 1.0;
    a(1, 0) = 4.0;
    a(1, 1) = -2.0;
    a(1, 2) = 5.0;
    a(2, 0) = 2.0;
    a(2, 1) = 8.0;
    a(2, 2) = 7.0;
    const lu_decomposition<real> lu(a);
    EXPECT_NEAR(lu.determinant(), -306.0, 1e-9);
}

TEST(dense_lu, random_round_trip)
{
    std::mt19937 rng(42);
    std::uniform_real_distribution<real> dist(-1.0, 1.0);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t n = 5 + static_cast<std::size_t>(trial);
        dense_matrix<real> a(n, n);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j)
                a(i, j) = dist(rng);
            a(i, i) += 3.0; // keep well-conditioned
        }
        std::vector<real> x_true(n);
        for (auto& v : x_true)
            v = dist(rng);
        const std::vector<real> b = a * x_true;
        const std::vector<real> x = lu_decomposition<real>(a).solve(b);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(x[i], x_true[i], 1e-9);
    }
}

TEST(dense_lu, complex_round_trip)
{
    std::mt19937 rng(7);
    std::uniform_real_distribution<real> dist(-1.0, 1.0);
    const std::size_t n = 12;
    dense_matrix<cplx> a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j)
            a(i, j) = cplx{dist(rng), dist(rng)};
        a(i, i) += cplx{4.0, 1.0};
    }
    std::vector<cplx> x_true(n);
    for (auto& v : x_true)
        v = cplx{dist(rng), dist(rng)};
    const std::vector<cplx> b = a * x_true;
    const std::vector<cplx> x = lu_decomposition<cplx>(a).solve(b);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_LT(std::abs(x[i] - x_true[i]), 1e-9);
}

TEST(sparse_lu, matches_dense_on_random_sparse)
{
    std::mt19937 rng(123);
    std::uniform_real_distribution<real> dist(-1.0, 1.0);
    std::uniform_int_distribution<std::size_t> pick(0, 29);
    const std::size_t n = 30;
    triplet_matrix<real> t(n, n);
    dense_matrix<real> d(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        t.add(i, i, 5.0);
        d(i, i) += 5.0;
    }
    for (int k = 0; k < 150; ++k) {
        const std::size_t i = pick(rng);
        const std::size_t j = pick(rng);
        const real v = dist(rng);
        t.add(i, j, v);
        d(i, j) += v;
    }
    std::vector<real> b(n);
    for (auto& v : b)
        v = dist(rng);
    const std::vector<real> xs = sparse_lu<real>(csc_matrix<real>(t)).solve(b);
    const std::vector<real> xd = lu_decomposition<real>(d).solve(b);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(xs[i], xd[i], 1e-9);
}

TEST(sparse_lu, complex_tridiagonal)
{
    const std::size_t n = 50;
    triplet_matrix<cplx> t(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        t.add(i, i, cplx{4.0, 0.5});
        if (i + 1 < n) {
            t.add(i, i + 1, cplx{-1.0, 0.0});
            t.add(i + 1, i, cplx{-1.0, 0.1});
        }
    }
    std::vector<cplx> x_true(n);
    for (std::size_t i = 0; i < n; ++i)
        x_true[i] = cplx{static_cast<real>(i) * 0.1, -0.2};
    const csc_matrix<cplx> a(t);
    const std::vector<cplx> b = a.multiply(x_true);
    const std::vector<cplx> x = sparse_lu<cplx>(a).solve(b);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_LT(std::abs(x[i] - x_true[i]), 1e-9);
}

TEST(sparse_lu, permuted_identity)
{
    // Pure permutation matrix exercises pivoting without elimination.
    const std::size_t n = 6;
    triplet_matrix<real> t(n, n);
    for (std::size_t i = 0; i < n; ++i)
        t.add(i, (i + 2) % n, 1.0);
    std::vector<real> b(n);
    for (std::size_t i = 0; i < n; ++i)
        b[i] = static_cast<real>(i + 1);
    const std::vector<real> x = sparse_lu<real>(csc_matrix<real>(t)).solve(b);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x[(i + 2) % n], b[i], 1e-12);
}

TEST(sparse_lu, detects_singular)
{
    triplet_matrix<real> t(3, 3);
    t.add(0, 0, 1.0);
    t.add(1, 1, 1.0);
    // Column 2 is structurally empty.
    EXPECT_THROW(sparse_lu<real>{csc_matrix<real>(t)}, numeric_error);
}

TEST(sparse_lu, duplicate_entries_are_summed)
{
    triplet_matrix<real> t(2, 2);
    t.add(0, 0, 1.0);
    t.add(0, 0, 1.0);
    t.add(1, 1, 3.0);
    const std::vector<real> x = sparse_lu<real>(csc_matrix<real>(t)).solve(std::vector<real>{4.0, 9.0});
    EXPECT_NEAR(x[0], 2.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

} // namespace
