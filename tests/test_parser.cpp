// Netlist parser and expression evaluator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "core/analyzer.h"
#include "spice/dc_analysis.h"
#include "spice/devices/bjt.h"
#include "spice/devices/mosfet.h"
#include "spice/devices/passive.h"
#include "spice/devices/sources.h"
#include "spice/parser/expression.h"
#include "spice/parser/netlist_parser.h"

namespace {

using namespace acstab;
using namespace acstab::spice;

// ---- expressions ---------------------------------------------------------

TEST(expression, arithmetic_and_precedence)
{
    parameter_table p;
    EXPECT_DOUBLE_EQ(evaluate_expression("1+2*3", p), 7.0);
    EXPECT_DOUBLE_EQ(evaluate_expression("(1+2)*3", p), 9.0);
    EXPECT_DOUBLE_EQ(evaluate_expression("2^3^2", p), 512.0); // right assoc
    EXPECT_DOUBLE_EQ(evaluate_expression("-2^2", p), -4.0);   // unary binds loose
    EXPECT_DOUBLE_EQ(evaluate_expression("10/4", p), 2.5);
    EXPECT_DOUBLE_EQ(evaluate_expression("--3", p), 3.0);
}

TEST(expression, spice_suffixes_inside_expressions)
{
    parameter_table p;
    EXPECT_DOUBLE_EQ(evaluate_expression("2k + 500", p), 2500.0);
    EXPECT_DOUBLE_EQ(evaluate_expression("1meg/1k", p), 1000.0);
    EXPECT_DOUBLE_EQ(evaluate_expression("10p*2", p), 20e-12);
}

TEST(expression, parameters_and_functions)
{
    parameter_table p{{"a", 3.0}, {"fc", 1e6}};
    EXPECT_DOUBLE_EQ(evaluate_expression("a*2", p), 6.0);
    EXPECT_NEAR(evaluate_expression("2*pi*fc", p), 6.283185e6, 1.0);
    EXPECT_DOUBLE_EQ(evaluate_expression("sqrt(a*a)", p), 3.0);
    EXPECT_DOUBLE_EQ(evaluate_expression("max(a, 10)", p), 10.0);
    EXPECT_DOUBLE_EQ(evaluate_expression("pow(a, 2)", p), 9.0);
    EXPECT_NEAR(evaluate_expression("exp(ln(a))", p), 3.0, 1e-12);
}

TEST(expression, error_cases)
{
    parameter_table p;
    EXPECT_THROW(evaluate_expression("1+", p), parse_error);
    EXPECT_THROW(evaluate_expression("(1", p), parse_error);
    EXPECT_THROW(evaluate_expression("unknown_var", p), parse_error);
    EXPECT_THROW(evaluate_expression("nosuchfn(1)", p), parse_error);
    EXPECT_THROW(evaluate_expression("1/0", p), parse_error);
    EXPECT_THROW(evaluate_expression("sqrt(1,2)", p), parse_error);
    EXPECT_THROW(evaluate_expression("3 4", p), parse_error);
}

// ---- netlists ------------------------------------------------------------

TEST(parser, title_devices_and_values)
{
    const parsed_netlist net = parse_netlist(R"(resistive divider test
V1 in 0 10
R1 in mid 1k
R2 mid 0 3k
.op
.end
)");
    EXPECT_EQ(net.title, "resistive divider test");
    EXPECT_EQ(net.ckt.devices().size(), 3u);
    ASSERT_EQ(net.analyses.size(), 1u);
    EXPECT_EQ(net.analyses[0].kind, analysis_kind::op);

    circuit& c = const_cast<circuit&>(net.ckt);
    const dc_result op = dc_operating_point(c);
    EXPECT_NEAR(node_voltage(c, op.solution, "mid"), 7.5, 1e-9);
}

TEST(parser, case_insensitive_and_continuations)
{
    const parsed_netlist net = parse_netlist(R"(continuation test
V1 IN 0 DC 5
R1 IN
+ OUT
+ 2K
R2 OUT 0 2k
.end
)");
    const auto* r1 = dynamic_cast<const resistor*>(net.ckt.find_device("r1"));
    ASSERT_NE(r1, nullptr);
    EXPECT_DOUBLE_EQ(r1->resistance(), 2000.0);
    // IN and in are the same node.
    EXPECT_TRUE(net.ckt.find_node("in").has_value());
}

TEST(parser, comments_are_stripped)
{
    const parsed_netlist net = parse_netlist(R"(comment test
* a full-line comment
R1 a 0 1k ; trailing comment
R2 a 0 2k
.end
)");
    EXPECT_EQ(net.ckt.devices().size(), 2u);
}

TEST(parser, params_and_expressions)
{
    const parsed_netlist net = parse_netlist(R"(param test
.param rr = 2k  cc = {1/(2*pi*1meg*rr)}
R1 a 0 {rr}
C1 a 0 {cc}
.end
)");
    const auto* r1 = dynamic_cast<const resistor*>(net.ckt.find_device("r1"));
    const auto* c1 = dynamic_cast<const capacitor*>(net.ckt.find_device("c1"));
    ASSERT_NE(r1, nullptr);
    ASSERT_NE(c1, nullptr);
    EXPECT_DOUBLE_EQ(r1->resistance(), 2000.0);
    EXPECT_NEAR(c1->capacitance(), 1.0 / (two_pi * 1e6 * 2e3), 1e-18);
}

TEST(parser, source_waveforms)
{
    const parsed_netlist net = parse_netlist(R"(sources
V1 a 0 DC 2.5 AC 1 45
V2 b 0 PULSE(0 5 1u 10n 10n 2u 10u)
V3 c 0 SIN(1 0.5 1meg)
I1 0 d PWL(0 0 1u 1m 2u 0)
V4 e 0 STEP(0 1 1u 10n)
.end
)");
    const auto* v1 = dynamic_cast<const vsource*>(net.ckt.find_device("v1"));
    ASSERT_NE(v1, nullptr);
    EXPECT_DOUBLE_EQ(v1->spec().dc, 2.5);
    EXPECT_DOUBLE_EQ(v1->spec().ac_mag, 1.0);
    EXPECT_DOUBLE_EQ(v1->spec().ac_phase_deg, 45.0);

    const auto* v2 = dynamic_cast<const vsource*>(net.ckt.find_device("v2"));
    ASSERT_NE(v2, nullptr);
    EXPECT_EQ(v2->spec().kind, waveform_kind::pulse);
    EXPECT_DOUBLE_EQ(v2->spec().value_at(0.5e-6), 0.0);
    EXPECT_DOUBLE_EQ(v2->spec().value_at(2e-6), 5.0);

    const auto* v3 = dynamic_cast<const vsource*>(net.ckt.find_device("v3"));
    ASSERT_NE(v3, nullptr);
    EXPECT_EQ(v3->spec().kind, waveform_kind::sine);

    const auto* i1 = dynamic_cast<const isource*>(net.ckt.find_device("i1"));
    ASSERT_NE(i1, nullptr);
    EXPECT_EQ(i1->spec().kind, waveform_kind::pwl);
    EXPECT_NEAR(i1->spec().value_at(0.5e-6), 0.5e-3, 1e-12);

    const auto* v4 = dynamic_cast<const vsource*>(net.ckt.find_device("v4"));
    ASSERT_NE(v4, nullptr);
    EXPECT_DOUBLE_EQ(v4->spec().value_at(2e-6), 1.0);
}

TEST(parser, models_feed_devices)
{
    const parsed_netlist net = parse_netlist(R"(model test
.model mynpn NPN (is=2e-16 bf=80 vaf=60 tf=0.4n)
.model mynmos NMOS (vto=0.6 kp=120u lambda=0.03)
.model mydiode D (is=1e-15 n=1.5 cjo=2p)
Q1 c b 0 mynpn
M1 d g 0 0 mynmos W=20u L=2u
D1 a k mydiode
.end
)");
    const auto* q1 = dynamic_cast<const bjt*>(net.ckt.find_device("q1"));
    ASSERT_NE(q1, nullptr);
    EXPECT_DOUBLE_EQ(q1->model().is, 2e-16);
    EXPECT_DOUBLE_EQ(q1->model().bf, 80.0);
    EXPECT_DOUBLE_EQ(q1->model().vaf, 60.0);
    EXPECT_DOUBLE_EQ(q1->model().tf, 0.4e-9);

    const auto* m1 = dynamic_cast<const mosfet*>(net.ckt.find_device("m1"));
    ASSERT_NE(m1, nullptr);
    EXPECT_DOUBLE_EQ(m1->model().vto, 0.6);
    EXPECT_DOUBLE_EQ(m1->model().kp, 120e-6);
    EXPECT_DOUBLE_EQ(m1->width(), 20e-6);
    EXPECT_DOUBLE_EQ(m1->length(), 2e-6);
}

TEST(parser, subcircuit_expansion)
{
    const parsed_netlist net = parse_netlist(R"(subckt test
.subckt divider top bottom mid
R1 top mid 1k
R2 mid bottom 1k
.ends
V1 in 0 8
X1 in 0 half divider
X2 half 0 quarter divider
.end
)");
    // Devices are flattened with instance prefixes.
    EXPECT_NE(net.ckt.find_device("x1.r1"), nullptr);
    EXPECT_NE(net.ckt.find_device("x2.r2"), nullptr);
    circuit& c = const_cast<circuit&>(net.ckt);
    const dc_result op = dc_operating_point(c);
    // Loaded divider chain: V(half) = 8 * (2k || 2k + ...)—solve directly:
    // half sees 1k to in, 1k to gnd, and X2's 2k to gnd in parallel.
    const real vhalf = node_voltage(c, op.solution, "half");
    EXPECT_NEAR(vhalf, 8.0 * (2.0 / 3.0) / (1.0 + 2.0 / 3.0), 1e-9);
    EXPECT_NEAR(node_voltage(c, op.solution, "quarter"), vhalf / 2.0, 1e-9);
}

TEST(parser, controlled_sources_and_stability_card)
{
    const parsed_netlist net = parse_netlist(R"(controlled test
VS a 0 1
RA a 0 1k
E1 e 0 a 0 2
RE e 0 1k
F1 0 f vs 3
RF f 0 1k
.stability e 1k 1g 40
.stability all
.end
)");
    ASSERT_EQ(net.analyses.size(), 2u);
    EXPECT_EQ(net.analyses[0].kind, analysis_kind::stability_node);
    EXPECT_EQ(net.analyses[0].node, "e");
    EXPECT_DOUBLE_EQ(net.analyses[0].fstart, 1e3);
    EXPECT_DOUBLE_EQ(net.analyses[0].fstop, 1e9);
    EXPECT_EQ(net.analyses[0].points_per_decade, 40u);
    EXPECT_EQ(net.analyses[1].kind, analysis_kind::stability_all);

    circuit& c = const_cast<circuit&>(net.ckt);
    const dc_result op = dc_operating_point(c);
    EXPECT_NEAR(node_voltage(c, op.solution, "e"), 2.0, 1e-9);
    // I(vs) = -1 mA (plus-to-minus through the source); F injects
    // gain * I(vs) = -3 mA into f.
    EXPECT_NEAR(node_voltage(c, op.solution, "f"), -3.0, 1e-9);
}

TEST(parser, ac_and_tran_cards)
{
    const parsed_netlist net = parse_netlist(R"(cards
R1 a 0 1k
.ac dec 20 1k 1meg
.tran 1n 10u
.end
)");
    ASSERT_EQ(net.analyses.size(), 2u);
    EXPECT_EQ(net.analyses[0].kind, analysis_kind::ac);
    EXPECT_EQ(net.analyses[0].points_per_decade, 20u);
    EXPECT_DOUBLE_EQ(net.analyses[1].dt, 1e-9);
    EXPECT_DOUBLE_EQ(net.analyses[1].tstop, 10e-6);
}

TEST(parser, end_to_end_stability_from_netlist)
{
    // Full pipeline: text -> circuit -> stability plot.
    parsed_netlist net = parse_netlist(R"(tank from text
.param fn = 1meg  zeta = 0.25  c = 1n
.param wn = {2*pi*fn}
R1 tank 0 {sqrt(1/(wn^2*c)/c)/(2*zeta)}
L1 tank 0 {1/(wn^2*c)}
C1 tank 0 {c}
.end
)");
    core::stability_options opt;
    opt.sweep.fstart = 1e4;
    opt.sweep.fstop = 1e8;
    opt.sweep.points_per_decade = 60;
    core::stability_analyzer an(net.ckt, opt);
    const core::node_stability ns = an.analyze_node("tank");
    ASSERT_TRUE(ns.has_peak);
    EXPECT_NEAR(ns.dominant.freq_hz, 1e6, 2e4);
    EXPECT_NEAR(ns.zeta, 0.25, 0.01);
}

TEST(parser, error_reporting_with_line_numbers)
{
    const auto expect_line = [](const char* text, int line) {
        try {
            (void)parse_netlist(text);
            FAIL() << "expected parse_error";
        } catch (const parse_error& e) {
            EXPECT_EQ(e.line(), line) << e.what();
        }
    };
    expect_line("t\nR1 a 0\n.end\n", 2);              // missing value
    expect_line("t\nR1 a 0 1k\nD1 a 0 nomodel\n", 3); // unknown model
    expect_line("t\nR1 a 0 1k\nZ1 a 0 1k\n", 3);      // unknown device
    expect_line("t\nX1 a b nosub\n", 2);              // unknown subckt
    expect_line("t\n.subckt s a\nR1 a 0 1k\n", -1);   // unterminated subckt
    expect_line("t\n.ac oct 10 1 2\n", 2);            // unsupported sweep
}

TEST(parser, duplicate_and_malformed)
{
    EXPECT_THROW((void)parse_netlist("t\nR1 a 0 1k\nR1 a 0 2k\n"), circuit_error);
    EXPECT_THROW((void)parse_netlist("t\nR1 a 0 {1+}\n"), parse_error);
    EXPECT_THROW((void)parse_netlist("t\nV1 a 0 PULSE(1 2)\n"), parse_error);
}

TEST(parser, file_not_found)
{
    EXPECT_THROW((void)parse_netlist_file("/nonexistent/netlist.sp"), parse_error);
}

TEST(parser, subcircuit_port_count_mismatch_is_actionable)
{
    // The diagnostic names the subcircuit and both counts, so a miswired
    // X line is fixable from the message alone.
    try {
        (void)parse_netlist(R"(t
.subckt divider top bottom mid
R1 top mid 1k
R2 mid bottom 1k
.ends
X1 in 0 divider
.end
)");
        FAIL() << "expected parse_error";
    } catch (const parse_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("subcircuit 'divider' expects 3 nodes, got 2"),
                  std::string::npos)
            << msg;
        EXPECT_EQ(e.line(), 6);
    }
}

TEST(parser, subcircuit_instantiation_cycle_is_rejected)
{
    // A subcircuit that instantiates itself recurses through expand_subckt;
    // the depth cap turns the infinite recursion into a parse error.
    try {
        (void)parse_netlist(R"(t
.subckt loop a
R1 a b 1k
X1 b loop
.ends
X1 top loop
.end
)");
        FAIL() << "expected parse_error";
    } catch (const parse_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("nesting too deep"), std::string::npos) << msg;
    }
}

TEST(parser, hierarchical_node_names_survive_flattening)
{
    // Inner nodes keep their instance-qualified names ("x1.mid"), so
    // stability reports and farm records over subcircuit internals stay
    // addressable; ports alias the caller's nodes and get no copy.
    const parsed_netlist net = parse_netlist(R"(t
.subckt divider top bottom
R1 top mid 1k
R2 mid bottom 1k
.ends
V1 in 0 1
X1 in 0 divider
X2 in 0 divider
.end
)");
    EXPECT_TRUE(net.ckt.find_node("x1.mid").has_value());
    EXPECT_TRUE(net.ckt.find_node("x2.mid").has_value());
    EXPECT_FALSE(net.ckt.find_node("x1.top").has_value()); // port, not a copy
}

} // namespace
