// CLI option parsing and ASCII plotting.
#include <gtest/gtest.h>

#include "common/error.h"
#include "core/ascii_plot.h"
#include "tool/options.h"

namespace {

using namespace acstab;
using namespace acstab::tool;

std::vector<char*> argv_of(std::initializer_list<const char*> args)
{
    static std::vector<std::string> storage;
    storage.assign(args.begin(), args.end());
    std::vector<char*> out;
    for (auto& s : storage)
        out.push_back(s.data());
    return out;
}

TEST(cli_options, defaults)
{
    auto args = argv_of({});
    const cli_options opt = parse_cli_options(0, args.data());
    EXPECT_TRUE(opt.node.empty());
    EXPECT_DOUBLE_EQ(opt.fstart, 1e3);
    EXPECT_DOUBLE_EQ(opt.fstop, 1e9);
    EXPECT_EQ(opt.ppd, 50u);
    EXPECT_FALSE(opt.csv);
}

TEST(cli_options, full_set)
{
    auto args = argv_of({"--node", "out", "--fstart", "10k", "--fstop", "1g", "--ppd", "25",
                         "--tstop", "5u", "--dt", "1n", "--threads", "4", "--csv",
                         "--annotate", "--all", "--probe", "vp"});
    const cli_options opt = parse_cli_options(static_cast<int>(args.size()), args.data());
    EXPECT_EQ(opt.node, "out");
    EXPECT_DOUBLE_EQ(opt.fstart, 1e4);
    EXPECT_DOUBLE_EQ(opt.fstop, 1e9);
    EXPECT_EQ(opt.ppd, 25u);
    EXPECT_DOUBLE_EQ(opt.tstop, 5e-6);
    EXPECT_DOUBLE_EQ(opt.dt, 1e-9);
    EXPECT_EQ(opt.threads, 4u);
    EXPECT_TRUE(opt.csv);
    EXPECT_TRUE(opt.annotate);
    EXPECT_TRUE(opt.all_nodes);
    EXPECT_EQ(opt.probe, "vp");
}

TEST(cli_options, errors)
{
    auto missing = argv_of({"--node"});
    EXPECT_THROW(parse_cli_options(1, missing.data()), analysis_error);
    auto unknown = argv_of({"--wat", "1"});
    EXPECT_THROW(parse_cli_options(2, unknown.data()), analysis_error);
    auto bad_num = argv_of({"--fstart", "abc"});
    EXPECT_THROW(parse_cli_options(2, bad_num.data()), parse_error);
    // Bare tokens stay errors unless a command opts into positionals
    // (farm merge's shard files).
    auto stray = argv_of({"-node", "vout"});
    EXPECT_THROW(parse_cli_options(2, stray.data()), analysis_error);
    const cli_options opt = parse_cli_options(2, stray.data(), /*allow_positionals=*/true);
    ASSERT_EQ(opt.positionals.size(), 2u);
    EXPECT_EQ(opt.positionals[0], "-node");
}

TEST(cli_options, farm_grid_specs)
{
    EXPECT_EQ(parse_value_list("1k,2k,3k"),
              (std::vector<real>{1e3, 2e3, 3e3}));
    const core::corner_def corner = parse_corner_spec("fast:rval=0.9k,cval=0.8p");
    EXPECT_EQ(corner.name, "fast");
    EXPECT_DOUBLE_EQ(corner.overrides.at("rval"), 900.0);
    EXPECT_DOUBLE_EQ(corner.overrides.at("cval"), 0.8e-12);
    EXPECT_TRUE(parse_corner_spec("nominal").overrides.empty());
    const core::param_axis axis = parse_param_axis("vdd=2.5,3.3");
    EXPECT_EQ(axis.name, "vdd");
    ASSERT_EQ(axis.values.size(), 2u);
    const shard_spec sh = parse_shard_spec("2/8");
    EXPECT_EQ(sh.index, 1u);
    EXPECT_EQ(sh.count, 8u);
    EXPECT_THROW((void)parse_shard_spec("0/4"), analysis_error);
    EXPECT_THROW((void)parse_shard_spec("5/4"), analysis_error);
    EXPECT_THROW((void)parse_corner_spec(":r=1"), analysis_error);
    EXPECT_THROW((void)parse_param_axis("novalues="), analysis_error);
}

TEST(cli_options, sweep_point_count)
{
    EXPECT_EQ(sweep_point_count(1e3, 1e6, 10), 31u);
    EXPECT_EQ(sweep_point_count(1e3, 1e4, 40), 41u);
    EXPECT_THROW(sweep_point_count(1e6, 1e3, 10), analysis_error);
}

TEST(ascii_plot, renders_extremes_and_title)
{
    std::vector<real> x{1.0, 10.0, 100.0, 1000.0};
    std::vector<real> y{0.0, 5.0, -5.0, 0.0};
    core::ascii_plot_options opt;
    opt.title = "my plot";
    const std::string s = core::ascii_plot(x, y, opt);
    EXPECT_NE(s.find("my plot"), std::string::npos);
    EXPECT_NE(s.find('*'), std::string::npos);
    EXPECT_NE(s.find("5"), std::string::npos);
    EXPECT_NE(s.find("-5"), std::string::npos);
}

TEST(ascii_plot, linear_axis_and_errors)
{
    std::vector<real> x{0.0, 1.0, 2.0};
    std::vector<real> y{1.0, 1.0, 1.0}; // flat series must not divide by 0
    core::ascii_plot_options opt;
    opt.log_x = false;
    EXPECT_NO_THROW((void)core::ascii_plot(x, y, opt));

    std::vector<real> neg{-1.0, 1.0, 2.0};
    core::ascii_plot_options logopt;
    EXPECT_THROW((void)core::ascii_plot(neg, y, logopt), analysis_error);
    std::vector<real> one{1.0};
    EXPECT_THROW((void)core::ascii_plot(one, one, opt), analysis_error);
}

} // namespace
