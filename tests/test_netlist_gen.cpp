// The stress-netlist generators behind `acstab gen` (gen/netlist_gen):
// emitted text must parse cleanly at any size, realize the documented
// node counts, carry a usable .stability card, reject bad options, and
// produce circuits the analyzers actually solve.
#include <gtest/gtest.h>

#include <string>

#include "common/error.h"
#include "core/analyzer.h"
#include "gen/netlist_gen.h"
#include "spice/parser/netlist_parser.h"

namespace {

using namespace acstab;

TEST(netlist_gen, ladder_parses_with_expected_topology)
{
    gen::gen_options opt;
    opt.size = 17;
    spice::parsed_netlist net = spice::parse_netlist(gen::ladder_netlist(opt));

    // "in" drive node plus the 17 ladder nodes (ground is not counted).
    EXPECT_EQ(net.ckt.node_count(), 18u);
    EXPECT_TRUE(net.ckt.find_node("in").has_value());
    EXPECT_TRUE(net.ckt.find_node("n17").has_value());
    EXPECT_FALSE(net.ckt.find_node("n18").has_value());

    // The emitted .stability card probes the middle node with the
    // requested band.
    ASSERT_EQ(net.analyses.size(), 1u);
    const spice::analysis_card& card = net.analyses.front();
    EXPECT_EQ(card.kind, spice::analysis_kind::stability_node);
    EXPECT_EQ(card.node, "n9");
    EXPECT_DOUBLE_EQ(card.fstart, opt.fstart);
    EXPECT_DOUBLE_EQ(card.fstop, opt.fstop);
    EXPECT_EQ(card.points_per_decade, opt.points_per_decade);
}

TEST(netlist_gen, rcmesh_parses_with_expected_topology)
{
    gen::gen_options opt;
    opt.size = 9; // k = 3
    spice::parsed_netlist net = spice::parse_netlist(gen::rcmesh_netlist(opt));

    // "src" drive node plus the 3x3 grid.
    EXPECT_EQ(net.ckt.node_count(), 10u);
    EXPECT_TRUE(net.ckt.find_node("src").has_value());
    EXPECT_TRUE(net.ckt.find_node("n0_0").has_value());
    EXPECT_TRUE(net.ckt.find_node("n2_2").has_value());
    EXPECT_FALSE(net.ckt.find_node("n3_0").has_value());

    ASSERT_EQ(net.analyses.size(), 1u);
    EXPECT_EQ(net.analyses.front().kind, spice::analysis_kind::stability_node);
    EXPECT_EQ(net.analyses.front().node, "n1_1");

    // A sub-target size still realizes the documented minimum mesh (2x2).
    opt.size = 1;
    spice::parsed_netlist tiny = spice::parse_netlist(gen::rcmesh_netlist(opt));
    EXPECT_EQ(tiny.ckt.node_count(), 5u);
}

TEST(netlist_gen, rcmesh_accepts_hundred_thousand_nodes)
{
    // The size -> k mapping used to round-trip through double sqrt and
    // long; verify the integer path realizes the exact k*k grid at the
    // 100k-node scale the scaling bench sweeps (emit + count only, no
    // parse: the text is ~30 MB).
    gen::gen_options opt;
    opt.size = 100000; // k = 316 (316^2 = 99856, 317^2 = 100489)
    const std::string text = gen::rcmesh_netlist(opt);
    EXPECT_NE(text.find("* generated 316x316 RC mesh"), std::string::npos);
    EXPECT_NE(text.find("n315_315 0 "), std::string::npos); // last grid cap
    EXPECT_EQ(text.find("n316_"), std::string::npos);
    EXPECT_NE(text.find(".stability n158_158 "), std::string::npos);

    // Sizes just below/above a square boundary round to nearest, not down.
    opt.size = 99856;
    EXPECT_NE(gen::rcmesh_netlist(opt).find("316x316"), std::string::npos);
    opt.size = 100489;
    EXPECT_NE(gen::rcmesh_netlist(opt).find("317x317"), std::string::npos);

    // Absurd sizes fail loudly instead of overflowing index arithmetic.
    opt.size = std::size_t{1} << 40;
    EXPECT_THROW((void)gen::rcmesh_netlist(opt), analysis_error);
    EXPECT_THROW((void)gen::ladder_netlist(opt), analysis_error);
}

TEST(netlist_gen, generate_dispatches_and_is_deterministic)
{
    gen::gen_options opt;
    opt.size = 12;
    EXPECT_EQ(gen::generate_netlist("ladder", opt), gen::ladder_netlist(opt));
    EXPECT_EQ(gen::generate_netlist("rcmesh", opt), gen::rcmesh_netlist(opt));
    EXPECT_EQ(gen::ladder_netlist(opt), gen::ladder_netlist(opt));
}

TEST(netlist_gen, rejects_bad_options)
{
    EXPECT_THROW((void)gen::generate_netlist("spiral", {}), analysis_error);

    gen::gen_options opt;
    opt.size = 0;
    EXPECT_THROW((void)gen::ladder_netlist(opt), analysis_error);

    opt = {};
    opt.r = -1.0;
    EXPECT_THROW((void)gen::ladder_netlist(opt), analysis_error);
    opt = {};
    opt.c = 0.0;
    EXPECT_THROW((void)gen::rcmesh_netlist(opt), analysis_error);
    opt = {};
    opt.fstart = 1e6;
    opt.fstop = 1e3; // inverted band
    EXPECT_THROW((void)gen::rcmesh_netlist(opt), analysis_error);
}

TEST(netlist_gen, generated_ladder_runs_end_to_end)
{
    // A driven RC ladder is passive, so the probed node must come back
    // without an under-damped complex-pole signature — the point is that
    // the full parse -> DC -> sweep -> plot pipeline accepts generated
    // input unmodified.
    gen::gen_options gopt;
    gopt.size = 24;
    spice::parsed_netlist net = spice::parse_netlist(gen::ladder_netlist(gopt));

    core::stability_options opt;
    opt.sweep.fstart = gopt.fstart;
    opt.sweep.fstop = gopt.fstop;
    core::stability_analyzer an(net.ckt, opt);
    const core::node_stability ns = an.analyze_node(net.analyses.front().node);
    EXPECT_EQ(ns.node, "n12");
    EXPECT_FALSE(ns.is_underdamped);
    ASSERT_FALSE(ns.plot.freq_hz.empty());
}

} // namespace
