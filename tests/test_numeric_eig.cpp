// Eigenvalue solver: known spectra, companion matrices, balancing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "common/types.h"
#include "numeric/eig.h"

namespace {

using acstab::cplx;
using acstab::real;
using acstab::numeric::dense_matrix;
using acstab::numeric::eigenvalues;

void expect_spectrum(std::vector<cplx> got, std::vector<cplx> want, real tol)
{
    ASSERT_EQ(got.size(), want.size());
    const auto key = [](const cplx& a, const cplx& b) {
        if (a.real() != b.real())
            return a.real() < b.real();
        return a.imag() < b.imag();
    };
    std::sort(got.begin(), got.end(), key);
    std::sort(want.begin(), want.end(), key);
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_LT(std::abs(got[i] - want[i]), tol)
            << "eig " << i << ": got " << got[i].real() << "+" << got[i].imag() << "i";
}

TEST(eig, diagonal_matrix)
{
    dense_matrix<real> a(3, 3);
    a(0, 0) = 3.0;
    a(1, 1) = -1.0;
    a(2, 2) = 7.0;
    expect_spectrum(eigenvalues(a), {{3.0, 0.0}, {-1.0, 0.0}, {7.0, 0.0}}, 1e-10);
}

TEST(eig, rotation_gives_complex_pair)
{
    // 90-degree rotation: eigenvalues +/- i.
    dense_matrix<real> a(2, 2);
    a(0, 1) = -1.0;
    a(1, 0) = 1.0;
    expect_spectrum(eigenvalues(a), {{0.0, 1.0}, {0.0, -1.0}}, 1e-10);
}

TEST(eig, damped_oscillator_block)
{
    // Companion of s^2 + 2 zeta wn s + wn^2 with zeta=0.2, wn=3.
    const real zeta = 0.2;
    const real wn = 3.0;
    dense_matrix<real> a(2, 2);
    a(0, 1) = 1.0;
    a(1, 0) = -wn * wn;
    a(1, 1) = -2.0 * zeta * wn;
    const real re = -zeta * wn;
    const real im = wn * std::sqrt(1.0 - zeta * zeta);
    expect_spectrum(eigenvalues(a), {{re, im}, {re, -im}}, 1e-9);
}

TEST(eig, known_3x3_real_spectrum)
{
    // Upper triangular: eigenvalues on the diagonal.
    dense_matrix<real> a(3, 3);
    a(0, 0) = 1.0;
    a(0, 1) = 5.0;
    a(0, 2) = -2.0;
    a(1, 1) = 4.0;
    a(1, 2) = 9.0;
    a(2, 2) = -3.0;
    expect_spectrum(eigenvalues(a), {{1.0, 0.0}, {4.0, 0.0}, {-3.0, 0.0}}, 1e-9);
}

TEST(eig, similarity_invariance_under_scaling)
{
    // Badly scaled similarity transform of a known matrix; balancing must
    // recover the spectrum.
    dense_matrix<real> a(3, 3);
    a(0, 0) = 2.0;
    a(0, 1) = 1.0e-7;
    a(1, 0) = 1.0e7;
    a(1, 1) = 5.0;
    a(1, 2) = 3.0e-6;
    a(2, 1) = 2.0e6;
    a(2, 2) = -4.0;
    // Reference spectrum from the well-scaled equivalent
    // D A D^-1 with D = diag(1, 1e7, 1e13) undone:
    dense_matrix<real> b(3, 3);
    b(0, 0) = 2.0;
    b(0, 1) = 1.0;
    b(1, 0) = 1.0;
    b(1, 1) = 5.0;
    b(1, 2) = 3.0;
    b(2, 1) = 2.0;
    b(2, 2) = -4.0;
    std::vector<cplx> ea = eigenvalues(a);
    std::vector<cplx> eb = eigenvalues(b);
    expect_spectrum(ea, eb, 1e-6);
}

TEST(eig, trace_and_determinant_consistency)
{
    std::mt19937 rng(99);
    std::uniform_real_distribution<real> dist(-2.0, 2.0);
    for (int trial = 0; trial < 10; ++trial) {
        const std::size_t n = 6;
        dense_matrix<real> a(n, n);
        real trace = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j)
                a(i, j) = dist(rng);
            trace += a(i, i);
        }
        const std::vector<cplx> eig = eigenvalues(a);
        cplx sum{0.0, 0.0};
        for (const cplx& v : eig)
            sum += v;
        EXPECT_NEAR(sum.real(), trace, 1e-8);
        EXPECT_NEAR(sum.imag(), 0.0, 1e-8);
    }
}

TEST(eig, conjugate_closed)
{
    std::mt19937 rng(7);
    std::uniform_real_distribution<real> dist(-1.0, 1.0);
    dense_matrix<real> a(8, 8);
    for (std::size_t i = 0; i < 8; ++i)
        for (std::size_t j = 0; j < 8; ++j)
            a(i, j) = dist(rng);
    const std::vector<cplx> eig = eigenvalues(a);
    for (const cplx& v : eig) {
        if (std::fabs(v.imag()) < 1e-12)
            continue;
        bool found_conj = false;
        for (const cplx& w : eig)
            if (std::abs(w - std::conj(v)) < 1e-7)
                found_conj = true;
        EXPECT_TRUE(found_conj) << "unpaired complex eigenvalue";
    }
}

TEST(eig, empty_and_one_by_one)
{
    dense_matrix<real> a0(0, 0);
    EXPECT_TRUE(eigenvalues(a0).empty());
    dense_matrix<real> a1(1, 1);
    a1(0, 0) = 42.0;
    expect_spectrum(eigenvalues(a1), {{42.0, 0.0}}, 1e-12);
}

TEST(eig, rejects_non_square)
{
    dense_matrix<real> a(2, 3);
    EXPECT_THROW(eigenvalues(a), acstab::numeric_error);
}

} // namespace
