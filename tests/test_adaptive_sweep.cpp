// The adaptive frequency-grid engine: AAA rational fits must recover the
// analytic second-order prototype from a handful of samples, and the
// adaptive sweep must reproduce the dense fixed-grid reference — same
// peaks, margins within 0.5 degrees, natural frequencies within 1% — at
// a fraction (<= 1/3 on the acceptance workload) of the factorizations,
// serial and threaded.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <string>

#include "analysis/loop_gain.h"
#include "circuits/opamp.h"
#include "circuits/rlc.h"
#include "common/error.h"
#include "core/analyzer.h"
#include "core/second_order.h"
#include "engine/adaptive_sweep.h"
#include "engine/linearized_snapshot.h"
#include "numeric/aaa.h"
#include "numeric/interpolation.h"
#include "spice/dc_analysis.h"
#include "spice/parser/netlist_parser.h"

#ifndef ACSTAB_NETLIST_DIR
#define ACSTAB_NETLIST_DIR "netlists"
#endif

namespace {

using namespace acstab;

std::string netlist(const char* name)
{
    return std::string(ACSTAB_NETLIST_DIR) + "/" + name;
}

// ---- AAA rational fit ------------------------------------------------------

TEST(aaa_fit, recovers_second_order_prototype_from_12_samples)
{
    // The closed-form prototype behind the whole method (core/second_order):
    // T(j 2 pi f) sampled at only 12 log-spaced points over 6 decades must
    // come back as a model accurate to < 0.1% everywhere in the band.
    const auto t = numeric::rational::second_order_lowpass(0.3, to_omega(1e6));
    const std::vector<real> xs = numeric::log_space(1e3, 1e9, 12);
    std::vector<std::vector<cplx>> data(1, std::vector<cplx>(xs.size()));
    for (std::size_t i = 0; i < xs.size(); ++i)
        data[0][i] = t(cplx{0.0, to_omega(xs[i])});

    const numeric::aaa_model model = numeric::aaa_fit(xs, data);
    EXPECT_LE(model.support_count(), 12u);

    const std::vector<real> dense = numeric::log_space(1e3, 1e9, 600);
    for (const real f : dense) {
        const cplx exact = t(cplx{0.0, to_omega(f)});
        const cplx fitted = model.eval(0, f);
        EXPECT_LT(std::abs(fitted - exact), 1e-3 * std::max(std::abs(exact), real{1e-12}))
            << "f=" << f;
    }
}

TEST(aaa_fit, warm_start_seeds_become_support_and_fit_stays_accurate)
{
    // Simulate the adaptive driver's per-round refit: fit once, then
    // refit the same data warm-started from the first fit's support set.
    // Every seed must be adopted (that is the point: their per-step
    // weight eigen-solves are replaced by one batch solve) and the warm
    // model must stay as accurate as the cold one.
    const auto t = numeric::rational::second_order_lowpass(0.3, to_omega(1e6));
    const std::vector<real> xs = numeric::log_space(1e3, 1e9, 24);
    std::vector<std::vector<cplx>> data(1, std::vector<cplx>(xs.size()));
    for (std::size_t i = 0; i < xs.size(); ++i)
        data[0][i] = t(cplx{0.0, to_omega(xs[i])});

    const numeric::aaa_model cold = numeric::aaa_fit(xs, data);
    numeric::aaa_options warm_opt;
    warm_opt.seed_support.assign(cold.support_samples().begin(),
                                 cold.support_samples().end());
    // Garbage seeds (out of range, duplicate) must be ignored, not fatal.
    warm_opt.seed_support.push_back(9999);
    warm_opt.seed_support.push_back(cold.support_samples().front());
    const numeric::aaa_model warm = numeric::aaa_fit(xs, data, warm_opt);

    for (const std::size_t idx : cold.support_samples()) {
        const auto& adopted = warm.support_samples();
        EXPECT_NE(std::find(adopted.begin(), adopted.end(), idx), adopted.end())
            << "seed sample " << idx << " was not adopted";
    }
    for (const real f : numeric::log_space(1e3, 1e9, 200)) {
        const cplx exact = t(cplx{0.0, to_omega(f)});
        EXPECT_LT(std::abs(warm.eval(0, f) - exact),
                  1e-3 * std::max(std::abs(exact), real{1e-12}))
            << "f=" << f;
    }
}

TEST(aaa_fit, shared_support_fits_multiple_channels)
{
    // Two different responses (second-order pole pair + a real-pole roll-
    // off) through ONE support/weight set; both must evaluate accurately.
    const auto t1 = numeric::rational::second_order_lowpass(0.25, to_omega(1e5));
    const std::vector<real> xs = numeric::log_space(1e3, 1e8, 28);
    std::vector<std::vector<cplx>> data(2, std::vector<cplx>(xs.size()));
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const cplx s{0.0, to_omega(xs[i])};
        data[0][i] = t1(s);
        data[1][i] = cplx{1.0, 0.0} / (cplx{1.0, 0.0} + s / cplx{to_omega(3e5), 0.0});
    }
    const numeric::aaa_model model = numeric::aaa_fit(xs, data);
    for (const real f : numeric::log_space(1e3, 1e8, 150)) {
        const cplx s{0.0, to_omega(f)};
        EXPECT_LT(std::abs(model.eval(0, f) - t1(s)), 1e-5 * std::max(std::abs(t1(s)), real{1e-12}));
        const cplx e1 = cplx{1.0, 0.0} / (cplx{1.0, 0.0} + s / cplx{to_omega(3e5), 0.0});
        EXPECT_LT(std::abs(model.eval(1, f) - e1), 1e-5 * std::abs(e1));
    }
}

TEST(aaa_fit, validates_inputs)
{
    const std::vector<real> xs{1.0, 2.0};
    EXPECT_THROW((void)numeric::aaa_fit(xs, {{cplx{}, cplx{}}}), numeric_error); // too short
    const std::vector<real> dup{1.0, 2.0, 2.0, 3.0};
    EXPECT_THROW((void)numeric::aaa_fit(dup, {std::vector<cplx>(4)}), numeric_error);
    const std::vector<real> ok{1.0, 2.0, 3.0, 4.0};
    EXPECT_THROW((void)numeric::aaa_fit(ok, {std::vector<cplx>(3)}), numeric_error); // mismatch
    EXPECT_THROW((void)numeric::aaa_fit(ok, {}), numeric_error); // no components
}

// ---- adaptive vs dense-reference equivalence -------------------------------

core::stability_options follower_options(bool adaptive, std::size_t threads)
{
    core::stability_options opt;
    opt.sweep.fstart = 1e5;
    opt.sweep.fstop = 1e10;
    opt.sweep.points_per_decade = 50; // the netlist's .stability card density
    opt.threads = threads;
    opt.adaptive = adaptive;
    return opt;
}

/// The PR's acceptance criterion, checked at 1 and 4 threads: on the
/// follower.sp all-nodes analysis the adaptive path performs <= 1/3 the
/// factorizations of the fixed grid while every phase margin stays within
/// 0.5 degrees and every natural frequency within 1% of the dense sweep.
TEST(adaptive_sweep, follower_all_nodes_matches_dense_with_third_the_factorizations)
{
    spice::parsed_netlist net = spice::parse_netlist_file(netlist("follower.sp"));

    core::stability_analyzer dense_an(net.ckt, follower_options(false, 1));
    const core::stability_report dense = dense_an.analyze_all_nodes();
    ASSERT_FALSE(dense.nodes.empty());
    EXPECT_EQ(dense.factorizations, follower_options(false, 1).sweep.frequencies().size());

    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        core::stability_analyzer an(net.ckt, follower_options(true, threads));
        const core::stability_report adaptive = an.analyze_all_nodes();

        EXPECT_LE(3 * adaptive.factorizations, dense.factorizations)
            << "adaptive factored " << adaptive.factorizations << " of "
            << dense.factorizations << " fixed-grid points (threads=" << threads << ")";

        ASSERT_EQ(adaptive.nodes.size(), dense.nodes.size()) << "threads=" << threads;
        ASSERT_EQ(adaptive.skipped_nodes, dense.skipped_nodes);
        for (std::size_t i = 0; i < dense.nodes.size(); ++i) {
            const core::node_stability& d = dense.nodes[i];
            const core::node_stability& a = adaptive.nodes[i];
            EXPECT_EQ(a.node, d.node);
            ASSERT_EQ(a.has_peak, d.has_peak) << a.node;
            if (!d.has_peak)
                continue;
            EXPECT_NEAR(a.dominant.freq_hz, d.dominant.freq_hz, 0.01 * d.dominant.freq_hz)
                << a.node << " threads=" << threads;
            EXPECT_NEAR(a.phase_margin_est_deg, d.phase_margin_est_deg, 0.5)
                << a.node << " threads=" << threads;
        }
    }
}

TEST(adaptive_sweep, single_node_rlc_tank_matches_analytic_damping)
{
    spice::parsed_netlist net = spice::parse_netlist_file(netlist("rlc_tank.sp"));
    core::stability_options opt;
    opt.sweep.fstart = 1e4;
    opt.sweep.fstop = 1e8;
    opt.adaptive = true;
    core::stability_analyzer an(net.ckt, opt);
    const core::node_stability ns = an.analyze_node("tank");
    ASSERT_TRUE(ns.has_peak);
    EXPECT_NEAR(ns.zeta, 0.2, 0.01);
    EXPECT_NEAR(ns.dominant.freq_hz, 1e6, 2e4);
}

TEST(adaptive_sweep, loop_gain_margins_match_fixed_grid)
{
    spice::parsed_netlist net = spice::parse_netlist_file(netlist("two_pole_loop.sp"));
    const std::vector<real> freqs = numeric::log_grid(1e2, 1e8, 40);

    analysis::loop_gain_options fixed;
    const analysis::loop_gain_result ref
        = analysis::measure_loop_gain(net.ckt, "vprobe", freqs, fixed);
    ASSERT_TRUE(ref.margins.has_unity_crossing);
    EXPECT_EQ(ref.factorizations, freqs.size());

    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        analysis::loop_gain_options opt;
        opt.adaptive = true;
        opt.threads = threads;
        const analysis::loop_gain_result lg
            = analysis::measure_loop_gain(net.ckt, "vprobe", freqs, opt);
        ASSERT_TRUE(lg.margins.has_unity_crossing) << "threads=" << threads;
        EXPECT_LE(3 * lg.factorizations, ref.factorizations);
        EXPECT_NEAR(lg.margins.phase_margin_deg, ref.margins.phase_margin_deg, 0.5);
        EXPECT_NEAR(lg.margins.unity_freq_hz, ref.margins.unity_freq_hz,
                    0.01 * ref.margins.unity_freq_hz);
    }
}

TEST(adaptive_sweep, opamp_all_nodes_equivalent_at_1_and_4_threads)
{
    // Mirrors test_engine's thread-independence check on the adaptive path:
    // the refinement decisions derive from deterministic solves, so thread
    // count must not change the report.
    spice::circuit c;
    (void)circuits::build_opamp_buffer(c);
    core::stability_options opt;
    opt.sweep.points_per_decade = 40;
    opt.adaptive = true;
    opt.threads = 1;
    core::stability_analyzer an1(c, opt);
    const core::stability_report rep1 = an1.analyze_all_nodes();

    opt.threads = 4;
    core::stability_analyzer an4(c, opt);
    const core::stability_report rep4 = an4.analyze_all_nodes();

    EXPECT_EQ(rep1.factorizations, rep4.factorizations);
    ASSERT_EQ(rep1.nodes.size(), rep4.nodes.size());
    for (std::size_t i = 0; i < rep1.nodes.size(); ++i) {
        EXPECT_EQ(rep1.nodes[i].node, rep4.nodes[i].node);
        ASSERT_EQ(rep1.nodes[i].has_peak, rep4.nodes[i].has_peak);
        if (rep1.nodes[i].has_peak) {
            EXPECT_NEAR(rep1.nodes[i].dominant.freq_hz, rep4.nodes[i].dominant.freq_hz,
                        1e-6 * rep1.nodes[i].dominant.freq_hz);
            EXPECT_NEAR(rep1.nodes[i].zeta, rep4.nodes[i].zeta,
                        1e-6 * std::max(rep1.nodes[i].zeta, real{1e-6}));
        }
    }

    // And against the dense fixed-grid reference.
    opt.adaptive = false;
    opt.threads = 1;
    core::stability_analyzer dense_an(c, opt);
    const core::stability_report dense = dense_an.analyze_all_nodes();
    ASSERT_EQ(rep1.nodes.size(), dense.nodes.size());
    for (std::size_t i = 0; i < dense.nodes.size(); ++i) {
        ASSERT_EQ(rep1.nodes[i].has_peak, dense.nodes[i].has_peak) << dense.nodes[i].node;
        if (dense.nodes[i].has_peak) {
            EXPECT_NEAR(rep1.nodes[i].dominant.freq_hz, dense.nodes[i].dominant.freq_hz,
                        0.01 * dense.nodes[i].dominant.freq_hz)
                << dense.nodes[i].node;
            EXPECT_NEAR(rep1.nodes[i].phase_margin_est_deg,
                        dense.nodes[i].phase_margin_est_deg, 0.5)
                << dense.nodes[i].node;
        }
    }
}

// ---- driver-level behavior -------------------------------------------------

TEST(adaptive_sweep, solved_points_are_subset_and_model_fills_dense_grid)
{
    spice::circuit c;
    circuits::add_parallel_rlc_tank(c, "tank", 0.2, 1e6);
    const spice::dc_result op = spice::dc_operating_point(c);
    engine::snapshot_options sopt;
    sopt.zero_all_sources = true;
    const engine::linearized_snapshot snap(c, op.solution, sopt);

    engine::adaptive_sweep_options aopt;
    aopt.fstart = 1e4;
    aopt.fstop = 1e8;
    aopt.output_points_per_decade = 40;
    const engine::adaptive_sweep eng(aopt);
    const auto node = c.find_node("tank");
    ASSERT_TRUE(node.has_value());
    const std::size_t k = static_cast<std::size_t>(*node);
    const engine::adaptive_sweep_result res
        = eng.run_injections(snap, {{k, cplx{1.0, 0.0}}}, {{0, k}});

    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.factorizations, res.solved_freq_hz.size());
    // The output grid is dense (at least the fixed grid's size), sorted,
    // and contains every solved frequency.
    EXPECT_GE(res.freq_hz.size(), numeric::log_grid(1e4, 1e8, 40, 8).size());
    for (std::size_t i = 1; i < res.freq_hz.size(); ++i)
        EXPECT_GT(res.freq_hz[i], res.freq_hz[i - 1]);
    for (const real f : res.solved_freq_hz)
        EXPECT_NE(std::find(res.freq_hz.begin(), res.freq_hz.end(), f), res.freq_hz.end());
    ASSERT_EQ(res.values.size(), 1u);
    ASSERT_EQ(res.values[0].size(), res.freq_hz.size());
    EXPECT_LT(res.solved_freq_hz.size(), res.freq_hz.size() / 3);
}

TEST(adaptive_sweep, zero_rhs_converges_at_anchor_cost)
{
    // A zero AC stimulus (all-zero right-hand side) must come back as
    // exact zeros after only the anchor solves — not degrade into a 0/0
    // residual that flags every candidate until the budget is gone.
    spice::circuit c;
    circuits::add_parallel_rlc_tank(c, "tank", 0.3, 1e6);
    const spice::dc_result op = spice::dc_operating_point(c);
    engine::snapshot_options sopt;
    sopt.zero_all_sources = true;
    const engine::linearized_snapshot snap(c, op.solution, sopt);

    const engine::adaptive_sweep eng;
    const engine::adaptive_sweep_result res
        = eng.run(snap, {std::vector<cplx>(snap.size(), cplx{})}, {{0, 0}});
    EXPECT_TRUE(res.converged);
    const engine::adaptive_sweep_options& aopt = eng.options();
    EXPECT_EQ(res.factorizations,
              numeric::log_grid(aopt.fstart, aopt.fstop, aopt.anchors_per_decade, 8).size());
    for (const cplx& v : res.values[0])
        EXPECT_EQ(v, cplx{});
}

TEST(adaptive_sweep, validates_inputs)
{
    spice::circuit c;
    circuits::add_parallel_rlc_tank(c, "tank", 0.3, 1e6);
    const spice::dc_result op = spice::dc_operating_point(c);
    engine::snapshot_options sopt;
    sopt.zero_all_sources = true;
    const engine::linearized_snapshot snap(c, op.solution, sopt);
    const engine::adaptive_sweep eng;

    EXPECT_THROW((void)eng.run_injections(snap, {{snap.size(), cplx{1.0, 0.0}}}, {{0, 0}}),
                 analysis_error); // bad injection index
    EXPECT_THROW((void)eng.run_injections(snap, {{0, cplx{1.0, 0.0}}}, {}),
                 analysis_error); // no channels
    EXPECT_THROW((void)eng.run_injections(snap, {{0, cplx{1.0, 0.0}}}, {{1, 0}}),
                 analysis_error); // channel rhs out of range
    EXPECT_THROW((void)eng.run_injections(snap, {{0, cplx{1.0, 0.0}}}, {{0, snap.size()}}),
                 analysis_error); // channel unknown out of range
    EXPECT_THROW((void)eng.run(snap, {std::vector<cplx>(snap.size() + 1)}, {{0, 0}}),
                 analysis_error); // wrong RHS length
}

} // namespace
