// Impedance-zero analysis and validation of the shipped example netlists.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/pole_zero.h"
#include "circuits/rlc.h"
#include "common/error.h"
#include "core/analyzer.h"
#include "spice/circuit.h"
#include "spice/devices/passive.h"
#include "spice/parser/netlist_parser.h"

#ifndef ACSTAB_NETLIST_DIR
#define ACSTAB_NETLIST_DIR "."
#endif

namespace {

using namespace acstab;
using namespace acstab::spice;

TEST(impedance_zeros, series_rc_branch_zero)
{
    // Z at node n of (R1 + 1/sC to ground) || R2: the numerator root is
    // s = -1/(R1 C); shorting n leaves exactly that RC pole.
    circuit c;
    const node_id n = c.node("n");
    const node_id m = c.node("m");
    const real r1 = 1e3;
    const real cap = 1e-9;
    c.add<resistor>("r1", n, m, r1);
    c.add<capacitor>("c1", m, ground_node, cap);
    c.add<resistor>("r2", n, ground_node, 10e3);
    core::stability_analyzer an(c);
    const auto zeros = analysis::impedance_zeros_at_node(c, an.operating_point(), "n");
    ASSERT_EQ(zeros.size(), 1u);
    EXPECT_FALSE(zeros[0].is_complex);
    EXPECT_NEAR(zeros[0].s.real(), -1.0 / (r1 * cap), 0.01 / (r1 * cap));
}

TEST(impedance_zeros, tank_zero_at_dc)
{
    // Parallel RLC tank: Z = sL / (s^2 LC + sL/R + 1) has its only finite
    // zero at s = 0 (the inductor's DC short).
    circuit c;
    circuits::add_parallel_rlc_tank(c, "tank", 0.3, 1e6);
    core::stability_analyzer an(c);
    const auto zeros = analysis::impedance_zeros_at_node(c, an.operating_point(), "tank");
    ASSERT_FALSE(zeros.empty());
    // All reported zeros sit far below the tank's natural frequency.
    for (const auto& z : zeros)
        EXPECT_LT(z.freq_hz, 1e3);
}

TEST(impedance_zeros, complex_zero_from_shorted_subtank)
{
    // A series R + LC-tank branch hanging off the probed node: shorting
    // the node leaves the LC tank resonating -> complex zero pair of Z.
    circuit c;
    const node_id n = c.node("n");
    const node_id m = c.node("m");
    c.add<resistor>("rload", n, ground_node, 1e3);
    c.add<resistor>("rser", n, m, 100.0);
    const real l = 1e-6;
    const real cap = 1e-9;
    c.add<inductor>("l1", m, ground_node, l);
    c.add<capacitor>("c1", m, ground_node, cap);
    core::stability_analyzer an(c);
    const auto zeros = analysis::impedance_zeros_at_node(c, an.operating_point(), "n");
    bool found = false;
    const real f0 = 1.0 / (two_pi * std::sqrt(l * cap));
    for (const auto& z : zeros)
        if (z.is_complex && std::fabs(z.freq_hz - f0) < 0.02 * f0)
            found = true;
    EXPECT_TRUE(found);
}

TEST(impedance_zeros, validates_node)
{
    circuit c;
    circuits::add_parallel_rlc_tank(c, "tank", 0.3, 1e6);
    core::stability_analyzer an(c);
    const auto& op = an.operating_point();
    EXPECT_THROW((void)analysis::impedance_zeros_at_node(c, op, "nope"), analysis_error);
    EXPECT_THROW((void)analysis::impedance_zeros_at_node(c, op, "0"), analysis_error);
}

// ---- the netlists shipped in netlists/ must stay valid --------------------

TEST(shipped_netlists, rlc_tank_reproduces_eq14)
{
    parsed_netlist net
        = parse_netlist_file(std::string(ACSTAB_NETLIST_DIR) + "/rlc_tank.sp");
    ASSERT_EQ(net.analyses.size(), 1u);
    core::stability_options opt;
    opt.sweep.fstart = net.analyses[0].fstart;
    opt.sweep.fstop = net.analyses[0].fstop;
    opt.sweep.points_per_decade = net.analyses[0].points_per_decade;
    core::stability_analyzer an(net.ckt, opt);
    const core::node_stability ns = an.analyze_node(net.analyses[0].node);
    ASSERT_TRUE(ns.has_peak);
    EXPECT_NEAR(ns.zeta, 0.2, 0.01);
    EXPECT_NEAR(ns.dominant.freq_hz, 1e6, 2e4);
}

TEST(shipped_netlists, follower_shows_local_loop)
{
    parsed_netlist net
        = parse_netlist_file(std::string(ACSTAB_NETLIST_DIR) + "/follower.sp");
    core::stability_options opt;
    opt.sweep.fstart = 1e5;
    opt.sweep.fstop = 1e10;
    opt.sweep.points_per_decade = 50;
    core::stability_analyzer an(net.ckt, opt);
    const core::stability_report rep = an.analyze_all_nodes();
    bool ringing = false;
    for (const auto& ns : rep.nodes)
        if (ns.has_peak && ns.is_underdamped && ns.dominant.value < -10.0
            && ns.dominant.freq_hz > 1e7)
            ringing = true;
    EXPECT_TRUE(ringing);
}

TEST(shipped_netlists, two_pole_loop_matches_builder)
{
    parsed_netlist net
        = parse_netlist_file(std::string(ACSTAB_NETLIST_DIR) + "/two_pole_loop.sp");
    core::stability_analyzer an(net.ckt);
    const core::node_stability from_text = an.analyze_node("out");

    spice::circuit c;
    circuits::two_pole_loop_spec spec;
    const auto nodes = circuits::build_two_pole_loop(c, spec);
    core::stability_analyzer an2(c);
    const core::node_stability from_builder = an2.analyze_node(nodes.output);

    ASSERT_TRUE(from_text.has_peak);
    ASSERT_TRUE(from_builder.has_peak);
    EXPECT_NEAR(from_text.dominant.freq_hz, from_builder.dominant.freq_hz,
                0.02 * from_builder.dominant.freq_hz);
    EXPECT_NEAR(from_text.zeta, from_builder.zeta, 0.02);
}

} // namespace
