// Baseline analyses: Bode margins, loop-gain probe, pole pencil, step
// metrics — validated against the behavioral two-pole loop whose loop gain
// L(s) = a1 a2 / ((1+s/p1)(1+s/p2)) is known in closed form.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bode.h"
#include "analysis/loop_gain.h"
#include "analysis/pole_zero.h"
#include "analysis/transient_overshoot.h"
#include "circuits/rlc.h"
#include "common/error.h"
#include "core/analyzer.h"
#include "numeric/interpolation.h"
#include "numeric/polynomial.h"
#include "numeric/rational.h"
#include "spice/circuit.h"
#include "spice/devices/sources.h"
#include "spice/parser/netlist_parser.h"

#ifndef ACSTAB_NETLIST_DIR
#define ACSTAB_NETLIST_DIR "netlists"
#endif

namespace {

using namespace acstab;

numeric::rational analytic_loop(const circuits::two_pole_loop_spec& spec)
{
    // L(s) = a1 a2 / ((1 + s/p1)(1 + s/p2))
    const real w1 = to_omega(spec.p1_hz);
    const real w2 = to_omega(spec.p2_hz);
    return {numeric::polynomial({spec.a1 * spec.a2}),
            numeric::polynomial({1.0, 1.0 / w1}) * numeric::polynomial({1.0, 1.0 / w2})};
}

TEST(bode, closed_loop_response_matches_analytic)
{
    spice::circuit c;
    circuits::two_pole_loop_spec spec;
    const auto nodes = circuits::build_two_pole_loop(c, spec);
    const std::vector<real> freqs = numeric::log_space(1e2, 1e8, 200);
    const analysis::frequency_response fr
        = analysis::measure_response(c, nodes.source, nodes.output, freqs);

    const numeric::rational l = analytic_loop(spec);
    const numeric::rational cl = l.unity_feedback_closed_loop();
    for (std::size_t i = 0; i < freqs.size(); i += 13) {
        const real expected = cl.magnitude(to_omega(freqs[i]));
        EXPECT_NEAR(std::abs(fr.h[i]), expected, 0.02 * std::max(expected, 1e-3))
            << "f=" << freqs[i];
    }
}

TEST(bode, rejects_bad_source)
{
    spice::circuit c;
    circuits::two_pole_loop_spec spec;
    const auto nodes = circuits::build_two_pole_loop(c, spec);
    const std::vector<real> freqs = numeric::log_space(1e3, 1e6, 30);
    EXPECT_THROW(analysis::measure_response(c, "nope", nodes.output, freqs), analysis_error);
    // The probe vsource has zero AC magnitude.
    EXPECT_THROW(analysis::measure_response(c, nodes.probe, nodes.output, freqs),
                 analysis_error);
}

TEST(loop_gain, middlebrook_probe_matches_analytic)
{
    spice::circuit c;
    circuits::two_pole_loop_spec spec;
    const auto nodes = circuits::build_two_pole_loop(c, spec);
    const std::vector<real> freqs = numeric::log_space(1e2, 1e8, 200);
    const analysis::loop_gain_result lg = analysis::measure_loop_gain(c, nodes.probe, freqs);

    const numeric::rational l = analytic_loop(spec);
    for (std::size_t i = 0; i < freqs.size(); i += 11) {
        const cplx expected = l(cplx{0.0, to_omega(freqs[i])});
        EXPECT_LT(std::abs(lg.t[i] - expected), 0.03 * std::max(std::abs(expected), 1e-3))
            << "f=" << freqs[i];
    }
}

TEST(loop_gain, margins_match_analytic_crossover)
{
    spice::circuit c;
    circuits::two_pole_loop_spec spec;
    const auto nodes = circuits::build_two_pole_loop(c, spec);
    const std::vector<real> freqs = numeric::log_space(1e2, 1e9, 400);
    const analysis::loop_gain_result lg = analysis::measure_loop_gain(c, nodes.probe, freqs);

    // Analytic crossover of the two-pole loop.
    const numeric::rational l = analytic_loop(spec);
    real fc_expected = 0.0;
    {
        std::vector<real> mags;
        for (const real f : freqs)
            mags.push_back(l.magnitude(to_omega(f)));
        std::vector<real> logf;
        for (const real f : freqs)
            logf.push_back(std::log10(f));
        std::vector<real> db;
        for (const real m : mags)
            db.push_back(20.0 * std::log10(m));
        real x = 0.0;
        ASSERT_TRUE(numeric::find_crossing(logf, db, 0.0, x));
        fc_expected = std::pow(10.0, x);
    }
    ASSERT_TRUE(lg.margins.has_unity_crossing);
    EXPECT_NEAR(lg.margins.unity_freq_hz, fc_expected, 0.03 * fc_expected);
}

TEST(loop_gain, wrapping_three_pole_loop_reports_negative_margin)
{
    // The shipped three-pole loop (a = 1e4, poles 1k/10k/100k) wraps
    // through -180 degrees at ~33 kHz, below its ~208 kHz crossover: the
    // loop is unstable and the measured phase margin must come out near
    // the analytic -61.3 degrees — not 360 degrees high — for a sweep
    // window starting below AND above the wrap frequency.
    for (const real fstart : {1e2, 1e5}) {
        spice::parsed_netlist fresh = spice::parse_netlist_file(
            std::string(ACSTAB_NETLIST_DIR) + "/three_pole_loop.sp");
        const std::vector<real> freqs = numeric::log_grid(fstart, 1e9, 60);
        const analysis::loop_gain_result lg
            = analysis::measure_loop_gain(fresh.ckt, "vprobe", freqs);
        ASSERT_TRUE(lg.margins.has_unity_crossing) << "fstart=" << fstart;
        EXPECT_NEAR(lg.margins.unity_freq_hz, 208e3, 8e3) << "fstart=" << fstart;
        EXPECT_NEAR(lg.margins.phase_margin_deg, -61.3, 2.0) << "fstart=" << fstart;
    }
}

TEST(loop_gain, probe_validation)
{
    spice::circuit c;
    circuits::two_pole_loop_spec spec;
    const auto nodes = circuits::build_two_pole_loop(c, spec);
    const std::vector<real> freqs = numeric::log_space(1e3, 1e6, 30);
    EXPECT_THROW(analysis::measure_loop_gain(c, "nope", freqs), analysis_error);
    EXPECT_THROW(analysis::measure_loop_gain(c, nodes.source, freqs), analysis_error);
}

TEST(pole_zero, rlc_tank_pole_exact)
{
    spice::circuit c;
    circuits::add_parallel_rlc_tank(c, "tank", 0.25, 2e6);
    core::stability_analyzer an(c);
    const auto poles = analysis::circuit_poles(c, an.operating_point());
    analysis::pole dom;
    ASSERT_TRUE(analysis::dominant_complex_pole(poles, dom));
    EXPECT_NEAR(dom.freq_hz, 2e6, 2e3);
    EXPECT_NEAR(dom.zeta, 0.25, 2e-3);
}

TEST(pole_zero, closed_two_pole_loop_matches_quadratic)
{
    spice::circuit c;
    circuits::two_pole_loop_spec spec;
    const auto nodes = circuits::build_two_pole_loop(c, spec);
    (void)nodes;
    core::stability_analyzer an(c);
    const auto poles = analysis::circuit_poles(c, an.operating_point());

    // Closed-loop denominator: (1+s/w1)(1+s/w2) + a1 a2 = 0.
    const numeric::rational l = analytic_loop(spec);
    const numeric::polynomial den = l.den() + l.num();
    const auto expected = den.roots();
    analysis::pole dom;
    ASSERT_TRUE(analysis::dominant_complex_pole(poles, dom));
    bool matched = false;
    for (const cplx& e : expected)
        if (std::abs(e - dom.s) < 0.02 * std::abs(e))
            matched = true;
    EXPECT_TRUE(matched) << "dominant pole " << dom.s.real() << "+" << dom.s.imag() << "i";
}

TEST(pole_zero, real_rc_poles_have_zeta_one)
{
    spice::circuit c;
    circuits::build_rc_ladder(c, 3);
    core::stability_analyzer an(c);
    const auto poles = analysis::circuit_poles(c, an.operating_point());
    EXPECT_GE(poles.size(), 3u);
    for (const auto& p : poles)
        if (p.freq_hz < 1e12)
            EXPECT_FALSE(p.is_complex);
    EXPECT_TRUE(analysis::complex_pairs(poles).empty());
}

TEST(step_response, metrics_match_second_order_theory)
{
    // Closed loop of the two-pole plant: zeta and wn known analytically.
    spice::circuit c;
    circuits::two_pole_loop_spec spec;
    spec.a1 = 10.0;
    spec.a2 = 10.0;
    spec.p1_hz = 1e3;
    spec.p2_hz = 1e5;
    const auto nodes = circuits::build_two_pole_loop(c, spec);

    const real w1 = to_omega(spec.p1_hz);
    const real w2 = to_omega(spec.p2_hz);
    const real l0 = spec.a1 * spec.a2;
    // s^2/(w1 w2) + s(1/w1 + 1/w2) + 1 + L0 = 0
    const real wn = std::sqrt((1.0 + l0) * w1 * w2);
    const real zeta = 0.5 * (w1 + w2) / wn;
    ASSERT_LT(zeta, 1.0);

    auto* vin = dynamic_cast<spice::vsource*>(c.find_device(nodes.source));
    ASSERT_NE(vin, nullptr);
    vin->set_spec(spice::waveform_spec::make_step(0.0, 1.0, 1e-5, 1e-9));

    analysis::step_options so;
    so.tstop = 60.0 / (wn / two_pi);
    const analysis::step_response_metrics m
        = analysis::measure_step_response(c, nodes.output, so);

    const real expected_overshoot = 100.0 * std::exp(-pi * zeta / std::sqrt(1.0 - zeta * zeta));
    EXPECT_NEAR(m.overshoot_pct, expected_overshoot, 2.5);
    const real fd = wn * std::sqrt(1.0 - zeta * zeta) / two_pi;
    EXPECT_NEAR(m.ringing_freq_hz, fd, 0.08 * fd);
    EXPECT_NEAR(m.final_value, l0 / (1.0 + l0), 0.01);
}

TEST(step_response, validates_options)
{
    spice::circuit c;
    circuits::two_pole_loop_spec spec;
    const auto nodes = circuits::build_two_pole_loop(c, spec);
    analysis::step_options so;
    so.tstop = 0.0;
    EXPECT_THROW(analysis::measure_step_response(c, nodes.output, so), analysis_error);
}

} // namespace
