// The symbolic/numeric sparse-LU split behind the sweep engine:
// solve_batch must match repeated single solves bit for bit, the
// shared-symbolic engine path must match the per-chunk path (serial and
// threaded), and a zero pivot under a reused pivot order must leave the
// shared symbolic object intact while the fresh-factor fallback recovers.
// Runs under the ASan/UBSan CI job like every other test.
#include <gtest/gtest.h>

#include <complex>
#include <memory>
#include <span>
#include <vector>

#include "circuits/opamp.h"
#include "circuits/rlc.h"
#include "common/error.h"
#include "engine/linearized_snapshot.h"
#include "engine/sweep_engine.h"
#include "numeric/interpolation.h"
#include "numeric/sparse_factor.h"
#include "numeric/sparse_lu.h"
#include "spice/dc_analysis.h"

namespace {

using namespace acstab;

// --- solve_batch vs repeated solve ------------------------------------------

TEST(sparse_split, solve_batch_matches_repeated_solve)
{
    spice::circuit c;
    circuits::build_rc_ladder(c, 32);
    const spice::dc_result op = spice::dc_operating_point(c);
    const engine::linearized_snapshot snap(c, op.solution, {});
    const std::size_t n = snap.size();

    numeric::csc_matrix<cplx> work = snap.make_workspace();
    snap.assemble(to_omega(2.5e6), work);
    const auto sym = std::make_shared<const numeric::symbolic_lu<cplx>>(work);
    numeric::numeric_lu<cplx> lu(sym);
    lu.refactor(work);

    // A mixed batch: sparse unit injections plus one dense column.
    std::vector<std::vector<cplx>> batch;
    for (const std::size_t k : {std::size_t{0}, std::size_t{5}, n - 1}) {
        std::vector<cplx> rhs(n, cplx{});
        rhs[k] = cplx{1.0, 0.0};
        batch.push_back(std::move(rhs));
    }
    std::vector<cplx> dense(n);
    for (std::size_t i = 0; i < n; ++i)
        dense[i] = cplx{0.25 + static_cast<real>(i), -0.5 * static_cast<real>(i)};
    batch.push_back(std::move(dense));

    std::vector<const cplx*> cols;
    for (const auto& rhs : batch)
        cols.push_back(rhs.data());
    std::vector<cplx> x(n * batch.size());
    lu.solve_batch(cols.data(), batch.size(), x.data());

    for (std::size_t r = 0; r < batch.size(); ++r) {
        const std::vector<cplx> single = lu.solve(batch[r]);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(x[r * n + i], single[i]) << "rhs " << r << " entry " << i; // bit-identical
    }
}

TEST(sparse_split, solve_in_place_matches_allocating_solve)
{
    spice::circuit c;
    circuits::build_rc_ladder(c, 12);
    const spice::dc_result op = spice::dc_operating_point(c);
    const engine::linearized_snapshot snap(c, op.solution, {});
    const std::size_t n = snap.size();

    numeric::csc_matrix<cplx> work = snap.make_workspace();
    snap.assemble(to_omega(1e6), work);
    const auto sym = std::make_shared<const numeric::symbolic_lu<cplx>>(work);
    numeric::numeric_lu<cplx> lu(sym);
    lu.refactor(work);

    std::vector<cplx> b0(n, cplx{}), b1(n, cplx{});
    b0[1] = cplx{1.0, 0.0};
    b1[n - 2] = cplx{0.0, 2.0};
    const std::vector<cplx> x0 = lu.solve(b0);
    const std::vector<cplx> x1 = lu.solve(b1);

    // In-place: b and the solution share one buffer (the engine's probe).
    std::vector<cplx> y0 = b0, y1 = b1;
    lu.solve_in_place(y0.data());
    lu.solve_in_place(y1.data());
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(y0[i], x0[i]);
        EXPECT_EQ(y1[i], x1[i]);
    }
}

// --- shared symbolic vs per-chunk engine paths ------------------------------

std::vector<std::vector<cplx>> run_allnodes(const engine::linearized_snapshot& snap,
                                            const std::vector<real>& freqs, std::size_t threads,
                                            bool shared_symbolic, std::size_t rhs_block,
                                            engine::solver_tuning tuning = {})
{
    std::vector<engine::sweep_engine::injection> injections;
    for (std::size_t k = 0; k < snap.node_count(); ++k)
        injections.push_back({k, cplx{1.0, 0.0}});
    engine::sweep_engine_options eopt;
    eopt.threads = threads;
    eopt.shared_symbolic = shared_symbolic;
    eopt.rhs_block = rhs_block;
    eopt.tuning = tuning;
    std::vector<std::vector<cplx>> sol(freqs.size() * injections.size());
    engine::sweep_engine(eopt).run_injections(
        snap, freqs, injections,
        [&sol, &injections](std::size_t fi, std::size_t ri, std::span<const cplx> s) {
            sol[fi * injections.size() + ri].assign(s.begin(), s.end());
        });
    return sol;
}

real max_rel_err(const std::vector<std::vector<cplx>>& a, const std::vector<std::vector<cplx>>& b)
{
    EXPECT_EQ(a.size(), b.size());
    real worst = 0.0;
    for (std::size_t k = 0; k < a.size(); ++k) {
        real norm = 1e-30;
        for (const cplx& v : a[k])
            norm = std::max(norm, std::abs(v));
        for (std::size_t i = 0; i < a[k].size(); ++i)
            worst = std::max(worst, std::abs(a[k][i] - b[k][i]) / norm);
    }
    return worst;
}

TEST(sparse_split, shared_symbolic_matches_per_chunk_factorization)
{
    spice::circuit c;
    (void)circuits::build_opamp_buffer(c);
    const spice::dc_result op = spice::dc_operating_point(c);
    engine::snapshot_options sopt;
    sopt.zero_all_sources = true;
    sopt.gshunt = 1e-9;
    const engine::linearized_snapshot snap(c, op.solution, sopt);
    const std::vector<real> freqs = numeric::log_space(1e3, 1e9, 120);

    const auto per_chunk = run_allnodes(snap, freqs, 1, /*shared=*/false, 32);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        const auto shared = run_allnodes(snap, freqs, threads, /*shared=*/true, 32);
        EXPECT_LT(max_rel_err(per_chunk, shared), 1e-7) << threads << " threads";
    }
    // The per-chunk path itself must also agree with its threaded self.
    const auto per_chunk4 = run_allnodes(snap, freqs, 4, /*shared=*/false, 32);
    EXPECT_LT(max_rel_err(per_chunk, per_chunk4), 1e-7);
}

TEST(sparse_split, rhs_block_size_does_not_change_results)
{
    spice::circuit c;
    (void)circuits::build_opamp_buffer(c);
    const spice::dc_result op = spice::dc_operating_point(c);
    engine::snapshot_options sopt;
    sopt.zero_all_sources = true;
    const engine::linearized_snapshot snap(c, op.solution, sopt);
    const std::vector<real> freqs = numeric::log_space(1e4, 1e8, 60);

    // Under the default (SIMD) kernel the batch shape may legally change
    // rounding, so block sizes must agree to tolerance, not bytes.
    const auto batched = run_allnodes(snap, freqs, 1, true, 32);
    const auto unbatched = run_allnodes(snap, freqs, 1, true, 1);
    EXPECT_LT(max_rel_err(batched, unbatched), 1e-12);

    // The scalar kernel is one column at a time regardless of blocking:
    // there the block size must not change a single bit.
    engine::solver_tuning scalar;
    scalar.simd = false;
    const auto sc_batched = run_allnodes(snap, freqs, 1, true, 32, scalar);
    const auto sc_unbatched = run_allnodes(snap, freqs, 1, true, 1, scalar);
    ASSERT_EQ(sc_batched.size(), sc_unbatched.size());
    for (std::size_t k = 0; k < sc_batched.size(); ++k)
        EXPECT_EQ(sc_batched[k], sc_unbatched[k]) << k; // bit-identical per column
}

// --- zero-pivot fallback with a shared symbolic object ----------------------

numeric::csc_matrix<cplx> two_by_two(cplx a00, cplx a01, cplx a10, cplx a11)
{
    // Fixed full pattern so every variant shares the symbolic structure.
    return numeric::csc_matrix<cplx>(2, 2, {0, 2, 4}, {0, 1, 0, 1}, {a00, a10, a01, a11});
}

TEST(sparse_split, zero_pivot_fallback_with_shared_symbolic)
{
    // Seed matrix: diagonal-dominant, so the shared pivot order takes the
    // structural diagonal.
    const numeric::csc_matrix<cplx> a1
        = two_by_two(cplx{2.0, 0.0}, cplx{1.0, 0.0}, cplx{1.0, 0.0}, cplx{1.0, 0.0});
    const auto shared = std::make_shared<const numeric::symbolic_lu<cplx>>(a1);

    numeric::numeric_lu<cplx> worker(shared);
    worker.refactor(a1);
    const std::vector<cplx> x1 = worker.solve({cplx{3.0, 0.0}, cplx{2.0, 0.0}});
    EXPECT_NEAR(std::abs(x1[0] - cplx{1.0, 0.0}), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(x1[1] - cplx{1.0, 0.0}), 0.0, 1e-12);

    // Same pattern, but A(0,0) = 0: nonsingular, yet an exact zero pivot
    // under the reused order — the chunk_solver fallback scenario.
    const numeric::csc_matrix<cplx> a2
        = two_by_two(cplx{}, cplx{1.0, 0.0}, cplx{1.0, 0.0}, cplx{1.0, 0.0});
    EXPECT_THROW(worker.refactor(a2), numeric_error);

    // Fresh-factor path: re-pivot from the current values with a new local
    // symbolic object, exactly what the engine does on fallback.
    const auto local = std::make_shared<const numeric::symbolic_lu<cplx>>(a2);
    numeric::numeric_lu<cplx> fresh(local);
    fresh.refactor(a2);
    const std::vector<cplx> x2 = fresh.solve({cplx{1.0, 0.0}, cplx{2.0, 0.0}});
    EXPECT_NEAR(std::abs(x2[0] - cplx{1.0, 0.0}), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(x2[1] - cplx{1.0, 0.0}), 0.0, 1e-12);

    // The shared symbolic object is immutable: the worker that threw can
    // refactor against it again, and other workers can keep using it.
    worker.refactor(a1);
    const std::vector<cplx> x3 = worker.solve({cplx{3.0, 0.0}, cplx{2.0, 0.0}});
    EXPECT_EQ(x3, x1);
    numeric::numeric_lu<cplx> other(shared);
    other.refactor(a1);
    EXPECT_EQ(other.solve({cplx{3.0, 0.0}, cplx{2.0, 0.0}}), x1);
}

TEST(sparse_split, sparse_lu_facade_exposes_shared_symbolic)
{
    spice::circuit c;
    circuits::build_rc_ladder(c, 8);
    const spice::dc_result op = spice::dc_operating_point(c);
    const engine::linearized_snapshot snap(c, op.solution, {});
    numeric::csc_matrix<cplx> work = snap.make_workspace();
    snap.assemble(to_omega(1e5), work);

    numeric::sparse_lu<cplx>::options lopt;
    lopt.prepare_refactor = true;
    const numeric::sparse_lu<cplx> facade(work, lopt);

    // A worker bound to the facade's symbolic half reproduces its solves
    // (to rounding: the facade adopts the seed values from the analysis,
    // whose elimination order differs from refactor's by design).
    numeric::numeric_lu<cplx> worker(facade.symbolic());
    worker.refactor(work);
    std::vector<cplx> rhs(snap.size(), cplx{});
    rhs[2] = cplx{1.0, 0.0};
    const std::vector<cplx> a = worker.solve(rhs);
    const std::vector<cplx> b = facade.solve(rhs);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_LT(std::abs(a[i] - b[i]), 1e-12 * std::max(std::abs(b[i]), real{1e-12})) << i;
}

TEST(sparse_split, snapshot_caches_shared_symbolic)
{
    spice::circuit c;
    circuits::build_rc_ladder(c, 8);
    const spice::dc_result op = spice::dc_operating_point(c);
    const engine::linearized_snapshot snap(c, op.solution, {});

    const auto s1 = snap.shared_symbolic(to_omega(1e6));
    const auto s2 = snap.shared_symbolic(to_omega(1e6));
    EXPECT_EQ(s1.get(), s2.get()); // cached, not recomputed
    const auto s3 = snap.shared_symbolic(to_omega(1e3));
    EXPECT_NE(s1.get(), s3.get()); // different reference frequency
    EXPECT_EQ(s1->size(), s3->size());
}

} // namespace
