// Non-uniform-grid differentiation and the stability-function kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/types.h"
#include "core/second_order.h"
#include "numeric/differentiation.h"
#include "numeric/interpolation.h"
#include "numeric/rational.h"

namespace {

using acstab::real;
using acstab::numeric::derivative_nonuniform;
using acstab::numeric::log_log_curvature;
using acstab::numeric::log_space;
using acstab::numeric::second_derivative_nonuniform;
using acstab::numeric::stability_function_direct;

TEST(differentiation, exact_for_quadratics)
{
    // y = 3x^2 - 2x + 1 on a deliberately non-uniform grid.
    const std::vector<real> x{0.0, 0.1, 0.35, 0.5, 0.9, 1.5, 1.7};
    std::vector<real> y(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        y[i] = 3.0 * x[i] * x[i] - 2.0 * x[i] + 1.0;
    const std::vector<real> d1 = derivative_nonuniform(x, y);
    const std::vector<real> d2 = second_derivative_nonuniform(x, y);
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(d1[i], 6.0 * x[i] - 2.0, 1e-10) << "i=" << i;
    for (std::size_t i = 1; i + 1 < x.size(); ++i)
        EXPECT_NEAR(d2[i], 6.0, 1e-9) << "i=" << i;
}

TEST(differentiation, converges_on_sine)
{
    const std::size_t n = 400;
    std::vector<real> x(n);
    std::vector<real> y(n);
    for (std::size_t i = 0; i < n; ++i) {
        x[i] = static_cast<real>(i) / static_cast<real>(n - 1) * 3.14;
        y[i] = std::sin(x[i]);
    }
    const std::vector<real> d = derivative_nonuniform(x, y);
    for (std::size_t i = 0; i < n; i += 37)
        EXPECT_NEAR(d[i], std::cos(x[i]), 1e-4);
}

TEST(differentiation, rejects_bad_grids)
{
    const std::vector<real> x{1.0, 2.0};
    const std::vector<real> y{1.0, 2.0};
    EXPECT_THROW(derivative_nonuniform(x, y), acstab::numeric_error);
    const std::vector<real> xx{1.0, 2.0, 2.0, 3.0};
    const std::vector<real> yy{1.0, 2.0, 3.0, 4.0};
    EXPECT_THROW(derivative_nonuniform(xx, yy), acstab::numeric_error);
}

TEST(log_log_curvature, zero_for_power_laws)
{
    // |T| = k * w^alpha has zero curvature in log-log space: real poles
    // and zeros far away are filtered out (the paper's key property).
    for (const real alpha : {-2.0, -1.0, 0.0, 1.0}) {
        const std::vector<real> f = log_space(1e2, 1e6, 200);
        std::vector<real> mag(f.size());
        for (std::size_t i = 0; i < f.size(); ++i)
            mag[i] = 7.0 * std::pow(f[i], alpha);
        const std::vector<real> p = log_log_curvature(f, mag);
        for (std::size_t i = 2; i + 2 < p.size(); i += 11)
            EXPECT_NEAR(p[i], 0.0, 1e-6) << "alpha=" << alpha;
    }
}

TEST(log_log_curvature, matches_analytic_second_order)
{
    // Against the closed-form P(w) for the normalized prototype.
    const real zeta = 0.3;
    const auto t = acstab::numeric::rational::second_order_lowpass(zeta);
    const std::vector<real> w = log_space(0.01, 100.0, 600);
    std::vector<real> mag(w.size());
    for (std::size_t i = 0; i < w.size(); ++i)
        mag[i] = t.magnitude(w[i]);
    const std::vector<real> p = log_log_curvature(w, mag);
    for (std::size_t i = 5; i + 5 < w.size(); i += 23) {
        const real expected = acstab::core::analytic_stability_function(zeta, w[i]);
        EXPECT_NEAR(p[i], expected, 0.02 * std::max(1.0, std::fabs(expected))) << "w=" << w[i];
    }
}

TEST(log_log_curvature, peak_equals_minus_inverse_zeta_squared)
{
    for (const real zeta : {0.1, 0.2, 0.4, 0.7}) {
        const auto t = acstab::numeric::rational::second_order_lowpass(zeta);
        const std::vector<real> w = log_space(0.01, 100.0, 2000);
        std::vector<real> mag(w.size());
        for (std::size_t i = 0; i < w.size(); ++i)
            mag[i] = t.magnitude(w[i]);
        const std::vector<real> p = log_log_curvature(w, mag);
        const real min = *std::min_element(p.begin(), p.end());
        EXPECT_NEAR(min, -1.0 / (zeta * zeta), 0.02 / (zeta * zeta)) << "zeta=" << zeta;
    }
}

TEST(stability_function_direct, agrees_with_curvature_form)
{
    // Paper eq. (1.3) written literally vs the log-log curvature identity.
    const real zeta = 0.25;
    const auto t = acstab::numeric::rational::second_order_lowpass(zeta, 2.0 * acstab::pi * 1e4);
    const std::vector<real> f = log_space(1e2, 1e6, 800);
    std::vector<real> mag(f.size());
    for (std::size_t i = 0; i < f.size(); ++i)
        mag[i] = t.magnitude(acstab::to_omega(f[i]));
    const std::vector<real> a = log_log_curvature(f, mag);
    const std::vector<real> b = stability_function_direct(f, mag);
    for (std::size_t i = 4; i + 4 < f.size(); i += 17)
        EXPECT_NEAR(a[i], b[i], 0.02 * std::max(1.0, std::fabs(a[i])));
}

TEST(log_log_curvature, requires_positive_data)
{
    const std::vector<real> x{1.0, 2.0, 3.0, 4.0};
    const std::vector<real> y{1.0, -2.0, 3.0, 4.0};
    EXPECT_THROW(log_log_curvature(x, y), acstab::numeric_error);
}

TEST(analytic_stability_function, closed_form_properties)
{
    using acstab::core::analytic_stability_function;
    // Exactly -1/zeta^2 at w = 1 for any damping.
    for (const real zeta : {0.05, 0.1, 0.3, 0.5, 0.9, 1.5})
        EXPECT_NEAR(analytic_stability_function(zeta, 1.0), -1.0 / (zeta * zeta),
                    1e-9 / (zeta * zeta));
    // Vanishes far from resonance.
    EXPECT_NEAR(analytic_stability_function(0.3, 1e-4), 0.0, 1e-6);
    EXPECT_NEAR(analytic_stability_function(0.3, 1e4), 0.0, 1e-6);
}

} // namespace
