// SPICE number parsing and engineering formatting.
#include <gtest/gtest.h>

#include <clocale>

#include "common/error.h"
#include "spice/units.h"

namespace {

using namespace acstab;
using namespace acstab::spice;

TEST(units, plain_numbers)
{
    EXPECT_DOUBLE_EQ(parse_spice_number("42"), 42.0);
    EXPECT_DOUBLE_EQ(parse_spice_number("-3.5"), -3.5);
    EXPECT_DOUBLE_EQ(parse_spice_number("1e-9"), 1e-9);
    EXPECT_DOUBLE_EQ(parse_spice_number("2.5E6"), 2.5e6);
}

TEST(units, suffixes)
{
    EXPECT_DOUBLE_EQ(parse_spice_number("1k"), 1e3);
    EXPECT_DOUBLE_EQ(parse_spice_number("2.2u"), 2.2e-6);
    EXPECT_DOUBLE_EQ(parse_spice_number("10MEG"), 10e6);
    EXPECT_DOUBLE_EQ(parse_spice_number("10meg"), 10e6);
    EXPECT_DOUBLE_EQ(parse_spice_number("3m"), 3e-3);
    EXPECT_DOUBLE_EQ(parse_spice_number("5n"), 5e-9);
    EXPECT_DOUBLE_EQ(parse_spice_number("7p"), 7e-12);
    EXPECT_DOUBLE_EQ(parse_spice_number("1f"), 1e-15);
    EXPECT_DOUBLE_EQ(parse_spice_number("4G"), 4e9);
    EXPECT_DOUBLE_EQ(parse_spice_number("1T"), 1e12);
}

TEST(units, trailing_unit_names_ignored)
{
    EXPECT_DOUBLE_EQ(parse_spice_number("10kOhm"), 10e3);
    EXPECT_DOUBLE_EQ(parse_spice_number("5pF"), 5e-12);
    EXPECT_DOUBLE_EQ(parse_spice_number("3V"), 3.0);
    EXPECT_DOUBLE_EQ(parse_spice_number("2.5uA"), 2.5e-6);
}

TEST(units, parsing_is_locale_independent)
{
    // Under a comma-decimal locale, strtod-based parsing stops at the
    // '.' and silently truncates "1.5k" to 1 * 1000; the parser must be
    // immune to whatever LC_NUMERIC the host process runs with.
    const char* comma_locales[] = {"de_DE.UTF-8", "de_DE", "fr_FR.UTF-8", "fr_FR",
                                   "nl_NL.UTF-8", "C.UTF-8@comma"};
    const char* active = nullptr;
    for (const char* name : comma_locales) {
        if (std::setlocale(LC_NUMERIC, name) != nullptr
            && std::string(std::localeconv()->decimal_point) == ",") {
            active = name;
            break;
        }
    }
    if (active == nullptr)
        GTEST_SKIP() << "no comma-decimal locale installed";

    EXPECT_DOUBLE_EQ(parse_spice_number("1.5k"), 1500.0);
    EXPECT_DOUBLE_EQ(parse_spice_number("-3.5"), -3.5);
    EXPECT_DOUBLE_EQ(parse_spice_number("2.5E6"), 2.5e6);
    EXPECT_DOUBLE_EQ(parse_spice_number("4.7pF"), 4.7e-12);
    std::setlocale(LC_NUMERIC, "C");
}

TEST(units, explicit_plus_sign)
{
    EXPECT_DOUBLE_EQ(parse_spice_number("+5"), 5.0);
    EXPECT_DOUBLE_EQ(parse_spice_number("+.5"), 0.5);
    EXPECT_DOUBLE_EQ(parse_spice_number("+1.5k"), 1500.0);
    EXPECT_FALSE(try_parse_spice_number("+").has_value());
    // Doubled signs stay parse errors; a '+' only precedes a number.
    EXPECT_FALSE(try_parse_spice_number("+-5").has_value());
    EXPECT_FALSE(try_parse_spice_number("++5").has_value());
    EXPECT_FALSE(try_parse_spice_number("+k").has_value());
}

TEST(units, malformed_rejected)
{
    EXPECT_FALSE(try_parse_spice_number("").has_value());
    EXPECT_FALSE(try_parse_spice_number("abc").has_value());
    EXPECT_FALSE(try_parse_spice_number("1.2.3").has_value());
    EXPECT_FALSE(try_parse_spice_number("3k9").has_value());
    EXPECT_THROW(parse_spice_number("oops"), parse_error);
}

TEST(units, engineering_format)
{
    EXPECT_EQ(format_engineering(0.0), "0");
    EXPECT_EQ(format_engineering(1e3), "1k");
    EXPECT_EQ(format_engineering(3.162e6), "3.162M");
    EXPECT_EQ(format_engineering(-2.5e-9), "-2.5n");
    EXPECT_EQ(format_engineering(4.7e-12), "4.7p");
    EXPECT_EQ(format_frequency(3.16e6), "3.16MHz");
    EXPECT_EQ(format_frequency(50e6, 3), "50MHz");
}

TEST(units, format_round_trip)
{
    for (const double v : {1.0, 12.5, 999.0, 1.5e3, 2.7e-6, 8.1e9, 3.3e-13}) {
        const std::string s = format_engineering(v, 9);
        EXPECT_NEAR(parse_spice_number(s), v, std::abs(v) * 1e-6) << s;
    }
}

} // namespace
